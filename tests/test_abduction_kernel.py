"""Parity and plumbing suite for the compiled abduction kernels (PR 9).

Pins the :mod:`repro.core._kernels` accuracy contract:

* the Python mirror and the native backend (numba or cc) are bit-identical
  (same scalar arithmetic, libm on both sides),
* integer outputs — Viterbi paths, FFBS sample paths — are bit-identical
  to the NumPy tier,
* float outputs — emissions, gamma/xi posteriors, log-likelihoods — agree
  with the NumPy tier within ``rtol=1e-12``,
* the wired batch entry points (``kernel="compiled"``) route through the
  kernels and degrade to NumPy with a once-per-process warning when no
  backend is available,
* every compiled-kernel module in the package reports a consistent
  backend tier name (the shared ``repro.util.compiled`` detection).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr import _decisions
from repro.core import _kernels
from repro.core import CapacityGrid, EmissionModel, VeritasAbduction
from repro.core.abduction import (
    ABDUCTION_TIERS,
    DEFAULT_ABDUCTION_KERNEL,
    resolve_abduction_kernel,
    sample_traces_batch,
)
from repro.core.forward_backward import (
    forward_backward_batch,
    unique_power_stack,
)
from repro.core.sampler import sample_state_paths_stack
from repro.core.transitions import TransitionModel, tridiagonal_matrix
from repro.core.viterbi import viterbi_path_batch
from repro.player import _fused
from repro.tcp import _compiled
from repro.tcp.estimator import REQUEST_RTTS, chunk_state_arrays
from repro.tcp.state import TCPStateSnapshot
from repro.util.compiled import BACKEND_NAMES

RTOL = 1e-12


def random_tcp_state(rng) -> TCPStateSnapshot:
    return TCPStateSnapshot(
        cwnd_segments=int(rng.integers(1, 500)),
        ssthresh_segments=int(rng.integers(1, 500)),
        srtt_s=float(rng.uniform(0.01, 0.3)),
        min_rtt_s=float(rng.uniform(0.01, 0.3)),
        rto_s=float(rng.uniform(0.2, 1.0)),
        time_since_last_send_s=float(rng.uniform(0.0, 10.0)),
    )


def random_stack(seed, n_sessions=4, n_chunks=12, n_states=9):
    """Random stacked inputs: ``(log_b, transitions, gaps)``."""
    rng = np.random.default_rng(seed)
    transitions = TransitionModel(tridiagonal_matrix(n_states, stay_prob=0.8))
    log_b = rng.normal(-3.0, 2.0, size=(n_sessions, n_chunks, n_states))
    # Δ = 0 gaps included on purpose (identity transitions).
    gaps = rng.integers(0, 4, size=(n_sessions, n_chunks))
    return log_b, transitions, gaps


def force_python(monkeypatch):
    monkeypatch.setattr(_kernels, "FORCE_PYTHON", True)


class TestBackendConsistency:
    """The shared repro.util.compiled detection (PR 9 satellite)."""

    def test_all_kernel_modules_report_canonical_tiers(self):
        backends = {
            "_compiled": _compiled.backend(),
            "_decisions": _decisions.backend(),
            "_fused": _fused.backend(),
            "_kernels": _kernels.backend(),
        }
        for module, name in backends.items():
            assert name in BACKEND_NAMES, (module, name)
        # One toolchain, one answer: every module feature-detects through
        # repro.util.compiled, so the resolved tier cannot differ.
        assert len(set(backends.values())) == 1, backends

    def test_force_python_reports_python(self, monkeypatch):
        force_python(monkeypatch)
        assert _kernels.backend() == "python"
        assert _kernels.available()  # mirrors still serve the kernel path
        assert _kernels.use_kernel()


class TestKernelParity:
    """The four kernels vs the NumPy batch implementations."""

    def test_forward_backward_matches_numpy(self):
        log_b, transitions, gaps = random_stack(0)
        want = forward_backward_batch(log_b, transitions, gaps)
        stack, slots = unique_power_stack(transitions, gaps[:, 1:])
        gamma, xi, ll = _kernels.forward_backward_stack(
            log_b, transitions.initial, stack, slots
        )
        assert np.allclose(want.gamma, gamma, rtol=RTOL, atol=0)
        assert np.allclose(want.xi, xi, rtol=RTOL, atol=0)
        assert np.allclose(want.log_likelihoods, ll, rtol=RTOL, atol=0)

    def test_viterbi_bit_identical_to_numpy(self):
        log_b, transitions, gaps = random_stack(1)
        want = viterbi_path_batch(log_b, transitions, gaps)
        log_stack, slots = unique_power_stack(transitions, gaps[:, 1:], log=True)
        states, logp = _kernels.viterbi_stack(
            log_b, transitions.log_initial, log_stack, slots
        )
        assert np.array_equal(want.states, states)
        assert np.array_equal(want.log_probabilities, logp)

    def test_ffbs_bit_identical_to_numpy(self):
        log_b, transitions, gaps = random_stack(2)
        smooth = forward_backward_batch(log_b, transitions, gaps)
        vit = viterbi_path_batch(log_b, transitions, gaps)
        seeds = [100 + t for t in range(log_b.shape[0])]
        want = sample_state_paths_stack(vit.states, smooth.xi, 7, seeds)
        from repro.util.rng import ensure_rng

        uniforms = np.stack(
            [ensure_rng(s).random((log_b.shape[1] - 1, 7)) for s in seeds]
        )
        paths = _kernels.ffbs_stack(vit.states, smooth.xi, uniforms)
        assert np.array_equal(want, paths)

    def test_ffbs_degenerate_column_falls_back_to_viterbi(self):
        """An unreachable successor column must yield the Viterbi state."""
        n_states = 4
        states = np.array([[1, 2, 3]], dtype=np.int64)
        xi = np.zeros((1, 2, n_states, n_states))
        xi[0, 0, :, :] = 1.0 / n_states**2  # pair 0 fully reachable
        # pair 1: column 3 (the successor actually used) has zero mass.
        xi[0, 1, :, :2] = 0.125
        uniforms = np.full((1, 2, 3), 0.5)
        paths = _kernels.ffbs_stack(states, xi, uniforms)
        assert (paths[0, :, 1] == states[0, 1]).all()

    def test_emission_matches_numpy(self):
        rng = np.random.default_rng(3)
        tcp_states = [random_tcp_state(rng) for _ in range(40)]
        sizes = rng.uniform(2_000, 4_000_000, 40)
        observed = rng.uniform(0.0, 12.0, 40)
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid)
        want = model.log_prob_matrix(observed, tcp_states, sizes)
        cwnd0, ssthresh0, min_rtt = chunk_state_arrays(tcp_states)
        got = _kernels.emission_log_probs(
            observed, cwnd0, ssthresh0, min_rtt, sizes, grid.values_mbps,
            REQUEST_RTTS, model.sigma_mbps, model.outlier_mass, grid.max_mbps,
        )
        assert np.allclose(want, got, rtol=RTOL, atol=0)

    def test_emission_zero_outlier_mass_branch(self):
        rng = np.random.default_rng(4)
        tcp_states = [random_tcp_state(rng) for _ in range(10)]
        sizes = rng.uniform(2_000, 4_000_000, 10)
        observed = rng.uniform(0.0, 12.0, 10)
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid, outlier_mass=0.0)
        want = model.log_prob_matrix(observed, tcp_states, sizes)
        cwnd0, ssthresh0, min_rtt = chunk_state_arrays(tcp_states)
        got = _kernels.emission_log_probs(
            observed, cwnd0, ssthresh0, min_rtt, sizes, grid.values_mbps,
            REQUEST_RTTS, model.sigma_mbps, 0.0, grid.max_mbps,
        )
        assert np.allclose(want, got, rtol=RTOL, atol=0)

    def test_forward_underflow_raises_batch_message(self):
        """A zero transition stack underflows the forward pass at chunk 1
        with the NumPy tier's exact error message."""
        log_b, transitions, gaps = random_stack(5)
        n_states = log_b.shape[2]
        stack = np.zeros((1, n_states, n_states))
        slots = np.zeros((log_b.shape[0], log_b.shape[1] - 1), dtype=np.int64)
        with pytest.raises(
            FloatingPointError,
            match=r"forward pass underflowed at chunk 1 \(session 0\)",
        ):
            _kernels.forward_backward_stack(
                log_b, transitions.initial, stack, slots
            )


@pytest.mark.skipif(
    _kernels.backend() == "python",
    reason="no native backend to compare the mirror against",
)
class TestMirrorBitIdentity:
    """FORCE_PYTHON mirror vs the native backend: bit-identical."""

    def test_all_kernels_bit_identical(self, monkeypatch):
        log_b, transitions, gaps = random_stack(6)
        stack, slots = unique_power_stack(transitions, gaps[:, 1:])
        log_stack, _ = unique_power_stack(transitions, gaps[:, 1:], log=True)
        rng = np.random.default_rng(7)
        tcp_states = [random_tcp_state(rng) for _ in range(15)]
        sizes = rng.uniform(2_000, 4_000_000, 15)
        observed = rng.uniform(0.0, 12.0, 15)
        grid = CapacityGrid(0.5, 10.0)
        cwnd0, ssthresh0, min_rtt = chunk_state_arrays(tcp_states)
        emission_args = (
            observed, cwnd0, ssthresh0, min_rtt, sizes, grid.values_mbps,
            REQUEST_RTTS, 0.5, 0.05, grid.max_mbps,
        )

        native_fb = _kernels.forward_backward_stack(
            log_b, transitions.initial, stack, slots
        )
        native_vit = _kernels.viterbi_stack(
            log_b, transitions.log_initial, log_stack, slots
        )
        uniforms = np.stack(
            [np.random.default_rng(s).random((log_b.shape[1] - 1, 5))
             for s in range(log_b.shape[0])]
        )
        native_paths = _kernels.ffbs_stack(
            native_vit[0], native_fb[1], uniforms
        )
        native_emission = _kernels.emission_log_probs(*emission_args)

        force_python(monkeypatch)
        mirror_fb = _kernels.forward_backward_stack(
            log_b, transitions.initial, stack, slots
        )
        mirror_vit = _kernels.viterbi_stack(
            log_b, transitions.log_initial, log_stack, slots
        )
        mirror_paths = _kernels.ffbs_stack(native_vit[0], native_fb[1], uniforms)
        mirror_emission = _kernels.emission_log_probs(*emission_args)

        for native, mirror in zip(native_fb, mirror_fb):
            assert np.array_equal(native, mirror)
        for native, mirror in zip(native_vit, mirror_vit):
            assert np.array_equal(native, mirror)
        assert np.array_equal(native_paths, mirror_paths)
        assert np.array_equal(native_emission, mirror_emission)


class TestWiredEntryPoints:
    """kernel="compiled" on the batch functions routes and degrades right."""

    def test_forward_backward_batch_compiled(self):
        log_b, transitions, gaps = random_stack(8)
        want = forward_backward_batch(log_b, transitions, gaps)
        got = forward_backward_batch(log_b, transitions, gaps, kernel="compiled")
        assert np.allclose(want.gamma, got.gamma, rtol=RTOL, atol=0)
        assert np.allclose(want.xi, got.xi, rtol=RTOL, atol=0)
        assert np.allclose(
            want.log_likelihoods, got.log_likelihoods, rtol=RTOL, atol=0
        )

    def test_viterbi_batch_compiled_bit_identical(self):
        log_b, transitions, gaps = random_stack(9)
        want = viterbi_path_batch(log_b, transitions, gaps)
        got = viterbi_path_batch(log_b, transitions, gaps, kernel="compiled")
        assert np.array_equal(want.states, got.states)
        assert np.array_equal(want.log_probabilities, got.log_probabilities)

    def test_sampler_stack_compiled_bit_identical(self):
        log_b, transitions, gaps = random_stack(10)
        smooth = forward_backward_batch(log_b, transitions, gaps)
        vit = viterbi_path_batch(log_b, transitions, gaps)
        seeds = [30 + t for t in range(log_b.shape[0])]
        want = sample_state_paths_stack(vit.states, smooth.xi, 5, seeds)
        got = sample_state_paths_stack(
            vit.states, smooth.xi, 5, seeds, kernel="compiled"
        )
        assert np.array_equal(want, got)

    def test_emission_model_compiled(self):
        rng = np.random.default_rng(11)
        tcp_states = [random_tcp_state(rng) for _ in range(25)]
        sizes = rng.uniform(2_000, 4_000_000, 25)
        observed = rng.uniform(0.0, 12.0, 25)
        model = EmissionModel(CapacityGrid(0.5, 10.0))
        want = model.log_prob_matrix(observed, tcp_states, sizes)
        got = model.log_prob_matrix(
            observed, tcp_states, sizes, kernel="compiled"
        )
        assert np.allclose(want, got, rtol=RTOL, atol=0)

    def test_single_chunk_stack_takes_numpy_path(self):
        """N == 1 has no recursion; the compiled request must not warn and
        must match the NumPy tier exactly."""
        rng = np.random.default_rng(12)
        transitions = TransitionModel(tridiagonal_matrix(5, stay_prob=0.8))
        log_b = rng.normal(-2.0, 1.0, size=(3, 1, 5))
        gaps = np.zeros((3, 1), dtype=int)
        want = forward_backward_batch(log_b, transitions, gaps)
        got = forward_backward_batch(log_b, transitions, gaps, kernel="compiled")
        assert np.array_equal(want.gamma, got.gamma)
        assert got.xi.shape == (3, 0, 5, 5)

    def test_compiled_falls_back_with_warning(self, monkeypatch):
        """No backend => numpy results plus one RuntimeWarning per process."""
        log_b, transitions, gaps = random_stack(13)
        monkeypatch.setattr(_kernels, "use_kernel", lambda: False)
        monkeypatch.setattr(_kernels, "_FALLBACK_WARNED", False)
        want = forward_backward_batch(log_b, transitions, gaps)
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = forward_backward_batch(
                log_b, transitions, gaps, kernel="compiled"
            )
        assert np.array_equal(want.gamma, got.gamma)
        assert np.array_equal(want.xi, got.xi)
        # Second degrade in the same process stays silent.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            viterbi_path_batch(log_b, transitions, gaps, kernel="compiled")

    def test_resolve_abduction_kernel(self):
        assert resolve_abduction_kernel(None) == DEFAULT_ABDUCTION_KERNEL
        for tier in ABDUCTION_TIERS:
            assert resolve_abduction_kernel(tier) == tier
        with pytest.raises(ValueError, match="unknown abduction kernel"):
            resolve_abduction_kernel("turbo")
        with pytest.raises(ValueError, match="unknown abduction kernel"):
            VeritasAbduction(kernel="turbo")

    def test_cli_exposes_abduction_kernel_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["counterfactual", "--abduction-kernel", "compiled"]
        )
        assert args.abduction_kernel == "compiled"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["counterfactual", "--abduction-kernel", "turbo"]
            )


class TestSolveBatchTiers:
    """VeritasAbduction tiers end to end on real session logs."""

    @pytest.fixture(scope="class")
    def session_logs(self):
        from repro import (
            MPCAlgorithm,
            SessionConfig,
            StreamingSession,
            random_walk_trace,
            short_video,
        )

        video = short_video(duration_s=90.0, seed=3)
        logs = []
        for s in (20, 21, 22):
            trace = random_walk_trace(
                mean_mbps=5.0, duration=300.0, seed=s, low=2.0, high=9.0
            )
            logs.append(
                StreamingSession(
                    video, MPCAlgorithm(), trace, SessionConfig()
                ).run()
            )
        return logs

    def test_reference_tier_matches_numpy_bit_for_bit(self, session_logs):
        from repro import paper_veritas_config

        reference = VeritasAbduction(
            paper_veritas_config(), kernel="reference"
        ).solve_batch(session_logs)
        numpy_tier = VeritasAbduction(paper_veritas_config()).solve_batch(
            session_logs
        )
        for a, b in zip(reference, numpy_tier):
            assert np.array_equal(a.viterbi.states, b.viterbi.states)
            assert np.array_equal(a.smoothing.gamma, b.smoothing.gamma)
            assert np.array_equal(a.smoothing.xi, b.smoothing.xi)
            assert a.log_likelihood == b.log_likelihood

    def test_compiled_tier_within_contract(self, session_logs):
        from repro import paper_veritas_config

        numpy_tier = VeritasAbduction(paper_veritas_config()).solve_batch(
            session_logs
        )
        compiled = VeritasAbduction(
            paper_veritas_config(), kernel="compiled"
        ).solve_batch(session_logs)
        for a, b in zip(numpy_tier, compiled):
            assert np.array_equal(a.viterbi.states, b.viterbi.states)
            assert np.allclose(
                a.smoothing.gamma, b.smoothing.gamma, rtol=RTOL, atol=0
            )
            assert np.allclose(a.smoothing.xi, b.smoothing.xi, rtol=RTOL, atol=0)
            assert np.isclose(a.log_likelihood, b.log_likelihood, rtol=RTOL)

    def test_compiled_sampling_matches_numpy(self, session_logs):
        from repro import paper_veritas_config

        posteriors = VeritasAbduction(paper_veritas_config()).solve_batch(
            session_logs
        )
        seeds = [5, 6, 7]
        want = sample_traces_batch(posteriors, 4, seeds)
        got = sample_traces_batch(posteriors, 4, seeds, kernel="compiled")
        for traces_a, traces_b in zip(want, got):
            for a, b in zip(traces_a, traces_b):
                assert np.array_equal(a.boundaries, b.boundaries)
                assert np.array_equal(a.values, b.values)

    def test_reference_sampling_matches_numpy(self, session_logs):
        from repro import paper_veritas_config

        posteriors = VeritasAbduction(paper_veritas_config()).solve_batch(
            session_logs
        )
        seeds = [5, 6, 7]
        want = sample_traces_batch(posteriors, 4, seeds)
        got = sample_traces_batch(posteriors, 4, seeds, kernel="reference")
        for traces_a, traces_b in zip(want, got):
            for a, b in zip(traces_a, traces_b):
                assert np.array_equal(a.boundaries, b.boundaries)
                assert np.array_equal(a.values, b.values)

    def test_engine_accepts_abduction_kernel(self):
        from repro import CounterfactualEngine, paper_veritas_config

        engine = CounterfactualEngine(
            paper_veritas_config(), abduction_kernel="compiled"
        )
        assert engine.abduction.kernel == "compiled"
        assert engine.abduction_kernel == "compiled"
        with pytest.raises(ValueError, match="unknown abduction kernel"):
            CounterfactualEngine(
                paper_veritas_config(), abduction_kernel="turbo"
            )
