"""Allocation and dispatch budgets of the replay kernel tiers (PR 6, PR 8).

``kernel="scratch"`` promises an **allocation-free steady state**: once a
``BatchTCPConnection`` has warmed up, a pipe-full chunk download (every
lane finishing inside its current trace interval — the overwhelmingly
common case once windows have opened) runs entirely through ``out=``
ufuncs on preallocated per-batch buffers.  This suite pins that budget
with ``tracemalloc`` so a stray temporary (an allocating ufunc, a
buffered ``take``, a mixed-dtype cast) fails loudly instead of silently
regressing the hot loop.

Detection works by scale separation: with ``K`` lanes, any per-call lane
array costs at least ``K`` bytes (bool) and typically ``8 * K`` (float64
/ int64), while the per-call Python-object noise (result handling, a few
boxed floats in ``observe_rtt``) stays under ~1 KiB regardless of ``K``.
At ``K = 4096`` the assertion threshold of ``K`` bytes sits far above
the noise and far below the smallest possible lane array.

``kernel="fused"`` (PR 8) makes a stronger promise: the entire session —
every chunk's download, ABR decision and buffer/stall accounting — runs
inside **one** compiled call, eliminating per-chunk Python re-entry.
The dispatch-count test below pins that to exactly one
``_fused.run_session`` invocation per session, with zero per-chunk
``download_batch`` dispatches.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np

from repro.net.trace import PiecewiseConstantTrace, TraceBatch
from repro.tcp.connection import BatchTCPConnection

K = 4096
WARMUP_CALLS = 10
STEADY_CALLS = 25


def steady_state_connection():
    """A warmed-up scratch-tier connection in the pipe-full regime.

    One long interval at 1.0 Mbps keeps the BDP (10 kB) below even the
    initial congestion window (15 kB), so every lane is pipe-full from
    round 0 and every download takes the hot fluid path; back-to-back
    requests (idle == 0) keep slow-start restart inert.
    """
    trace = PiecewiseConstantTrace([0.0, 1e9], [1.0])
    conn = BatchTCPConnection(TraceBatch([trace] * K), kernel="scratch")
    assert conn._tier == "scratch"
    rng = np.random.default_rng(0)
    sizes = rng.uniform(2e4, 6e4, K)
    starts = np.zeros(K)
    for _ in range(WARMUP_CALLS):
        result = conn.download_batch(sizes, starts)
        np.copyto(starts, result.end_times_s)
    return conn, sizes, starts


class TestScratchAllocationBudget:
    def test_steady_state_allocates_no_arrays(self):
        conn, sizes, starts = steady_state_connection()
        gc.collect()
        tracemalloc.start()
        try:
            # One more warm call inside tracing so lazily-created
            # Python-level caches (bound methods, interned scalars) exist
            # before the measured window opens.
            result = conn.download_batch(sizes, starts)
            np.copyto(starts, result.end_times_s)
            gc.collect()
            base, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            for _ in range(STEADY_CALLS):
                result = conn.download_batch(sizes, starts)
                np.copyto(starts, result.end_times_s)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The high-water mark catches transient temporaries (allocated
        # and freed within a call); the current figure catches leaks.
        # Either way a single K-lane array (>= K bytes for bool,
        # 8 * K for float64) blows the budget.
        assert peak - base < K, (
            f"steady-state download_batch transiently allocated "
            f"{peak - base} bytes (budget: {K}); an array temporary has "
            f"crept into the scratch kernel's hot path"
        )
        assert current - base < K, (
            f"steady-state download_batch leaked {current - base} bytes "
            f"across {STEADY_CALLS} calls"
        )

    def test_steady_state_result_reuses_buffers(self):
        """The mutable result must alias the connection's own buffers —
        holding a reference across calls sees the next chunk's values."""
        conn, sizes, starts = steady_state_connection()
        first = conn.download_batch(sizes, starts)
        ends_buffer = first.end_times_s
        np.copyto(starts, first.end_times_s)
        second = conn.download_batch(sizes, starts)
        assert second is first  # one reusable result object
        assert second.end_times_s is ends_buffer  # same storage, new values


class TestFusedDispatchBudget:
    """``kernel="fused"``: one compiled call per session, no per-chunk
    Python re-entry (PR 8 acceptance criterion)."""

    def test_single_kernel_call_per_session(self, monkeypatch):
        from repro import BatchStreamingSession, SessionConfig, Video, default_ladder
        from repro.abr import BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm
        from repro.player import _fused
        from repro.player.batch_session import LaneGroup

        video = Video.generate(default_ladder(), duration_s=60.0, seed=7)
        rng = np.random.default_rng(3)
        traces = [
            PiecewiseConstantTrace.from_uniform(rng.uniform(0.3, 8.0, 40), 5.0)
            for _ in range(6)
        ]
        groups = [
            LaneGroup(BBAAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[:2]),
            LaneGroup(BOLAAlgorithm, SessionConfig(buffer_capacity_s=8.0), traces[2:4]),
            LaneGroup(MPCAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[4:]),
        ]

        kernel_calls = {"n": 0}
        real_run_session = _fused.run_session

        def counting_run_session(*args, **kwargs):
            kernel_calls["n"] += 1
            return real_run_session(*args, **kwargs)

        monkeypatch.setattr(_fused, "run_session", counting_run_session)

        chunk_dispatches = {"n": 0}
        real_download_batch = BatchTCPConnection.download_batch

        def counting_download_batch(self, *args, **kwargs):
            chunk_dispatches["n"] += 1
            return real_download_batch(self, *args, **kwargs)

        monkeypatch.setattr(
            BatchTCPConnection, "download_batch", counting_download_batch
        )

        log = BatchStreamingSession.fused(video, groups, kernel="fused").run()
        assert log.n_chunks == video.n_chunks  # the session actually ran
        assert kernel_calls["n"] == 1, (
            f"fused session entered the kernel {kernel_calls['n']} times; "
            f"the whole chunk->decision->chunk loop must be one call"
        )
        assert chunk_dispatches["n"] == 0, (
            f"fused session made {chunk_dispatches['n']} per-chunk "
            f"download_batch dispatches; Python re-entry has crept back in"
        )
