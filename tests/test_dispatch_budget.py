"""Allocation and dispatch budgets of the replay kernel tiers (PR 6, PR 8).

``kernel="scratch"`` promises an **allocation-free steady state**: once a
``BatchTCPConnection`` has warmed up, a pipe-full chunk download (every
lane finishing inside its current trace interval — the overwhelmingly
common case once windows have opened) runs entirely through ``out=``
ufuncs on preallocated per-batch buffers.  This suite pins that budget
with ``tracemalloc`` so a stray temporary (an allocating ufunc, a
buffered ``take``, a mixed-dtype cast) fails loudly instead of silently
regressing the hot loop.

Detection works by scale separation: with ``K`` lanes, any per-call lane
array costs at least ``K`` bytes (bool) and typically ``8 * K`` (float64
/ int64), while the per-call Python-object noise (result handling, a few
boxed floats in ``observe_rtt``) stays under ~1 KiB regardless of ``K``.
At ``K = 4096`` the assertion threshold of ``K`` bytes sits far above
the noise and far below the smallest possible lane array.

``kernel="fused"`` (PR 8) makes a stronger promise: the entire session —
every chunk's download, ABR decision and buffer/stall accounting — runs
inside **one** compiled call, eliminating per-chunk Python re-entry.
The dispatch-count test below pins that to exactly one
``_fused.run_session`` invocation per session, with zero per-chunk
``download_batch`` dispatches.

The compiled abduction tier (PR 9) makes the analogous promise for
inference: one :mod:`repro.core._kernels` entry per same-length session
stack for each of emission build, forward–backward, Viterbi and FFBS —
no per-chunk, per-session or per-sample Python re-entry inside a stack.
"""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np

from repro.net.trace import PiecewiseConstantTrace, TraceBatch
from repro.tcp.connection import BatchTCPConnection

K = 4096
WARMUP_CALLS = 10
STEADY_CALLS = 25


def steady_state_connection():
    """A warmed-up scratch-tier connection in the pipe-full regime.

    One long interval at 1.0 Mbps keeps the BDP (10 kB) below even the
    initial congestion window (15 kB), so every lane is pipe-full from
    round 0 and every download takes the hot fluid path; back-to-back
    requests (idle == 0) keep slow-start restart inert.
    """
    trace = PiecewiseConstantTrace([0.0, 1e9], [1.0])
    conn = BatchTCPConnection(TraceBatch([trace] * K), kernel="scratch")
    assert conn._tier == "scratch"
    rng = np.random.default_rng(0)
    sizes = rng.uniform(2e4, 6e4, K)
    starts = np.zeros(K)
    for _ in range(WARMUP_CALLS):
        result = conn.download_batch(sizes, starts)
        np.copyto(starts, result.end_times_s)
    return conn, sizes, starts


class TestScratchAllocationBudget:
    def test_steady_state_allocates_no_arrays(self):
        conn, sizes, starts = steady_state_connection()
        gc.collect()
        tracemalloc.start()
        try:
            # One more warm call inside tracing so lazily-created
            # Python-level caches (bound methods, interned scalars) exist
            # before the measured window opens.
            result = conn.download_batch(sizes, starts)
            np.copyto(starts, result.end_times_s)
            gc.collect()
            base, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            for _ in range(STEADY_CALLS):
                result = conn.download_batch(sizes, starts)
                np.copyto(starts, result.end_times_s)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # The high-water mark catches transient temporaries (allocated
        # and freed within a call); the current figure catches leaks.
        # Either way a single K-lane array (>= K bytes for bool,
        # 8 * K for float64) blows the budget.
        assert peak - base < K, (
            f"steady-state download_batch transiently allocated "
            f"{peak - base} bytes (budget: {K}); an array temporary has "
            f"crept into the scratch kernel's hot path"
        )
        assert current - base < K, (
            f"steady-state download_batch leaked {current - base} bytes "
            f"across {STEADY_CALLS} calls"
        )

    def test_steady_state_result_reuses_buffers(self):
        """The mutable result must alias the connection's own buffers —
        holding a reference across calls sees the next chunk's values."""
        conn, sizes, starts = steady_state_connection()
        first = conn.download_batch(sizes, starts)
        ends_buffer = first.end_times_s
        np.copyto(starts, first.end_times_s)
        second = conn.download_batch(sizes, starts)
        assert second is first  # one reusable result object
        assert second.end_times_s is ends_buffer  # same storage, new values


class TestFusedDispatchBudget:
    """``kernel="fused"``: one compiled call per session, no per-chunk
    Python re-entry (PR 8 acceptance criterion)."""

    def test_single_kernel_call_per_session(self, monkeypatch):
        from repro import BatchStreamingSession, SessionConfig, Video, default_ladder
        from repro.abr import BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm
        from repro.player import _fused
        from repro.player.batch_session import LaneGroup

        video = Video.generate(default_ladder(), duration_s=60.0, seed=7)
        rng = np.random.default_rng(3)
        traces = [
            PiecewiseConstantTrace.from_uniform(rng.uniform(0.3, 8.0, 40), 5.0)
            for _ in range(6)
        ]
        groups = [
            LaneGroup(BBAAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[:2]),
            LaneGroup(BOLAAlgorithm, SessionConfig(buffer_capacity_s=8.0), traces[2:4]),
            LaneGroup(MPCAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[4:]),
        ]

        kernel_calls = {"n": 0}
        real_run_session = _fused.run_session

        def counting_run_session(*args, **kwargs):
            kernel_calls["n"] += 1
            return real_run_session(*args, **kwargs)

        monkeypatch.setattr(_fused, "run_session", counting_run_session)

        chunk_dispatches = {"n": 0}
        real_download_batch = BatchTCPConnection.download_batch

        def counting_download_batch(self, *args, **kwargs):
            chunk_dispatches["n"] += 1
            return real_download_batch(self, *args, **kwargs)

        monkeypatch.setattr(
            BatchTCPConnection, "download_batch", counting_download_batch
        )

        log = BatchStreamingSession.fused(video, groups, kernel="fused").run()
        assert log.n_chunks == video.n_chunks  # the session actually ran
        assert kernel_calls["n"] == 1, (
            f"fused session entered the kernel {kernel_calls['n']} times; "
            f"the whole chunk->decision->chunk loop must be one call"
        )
        assert chunk_dispatches["n"] == 0, (
            f"fused session made {chunk_dispatches['n']} per-chunk "
            f"download_batch dispatches; Python re-entry has crept back in"
        )


class TestAbductionDispatchBudget:
    """Compiled abduction tier (PR 9): one kernel entry per same-length
    session stack — emission once per corpus, forward–backward / Viterbi /
    FFBS once per stack, regardless of chunk, session or sample counts.

    Runs on the Python mirror (``FORCE_PYTHON``) so the dispatch counts
    are pinned on every CI leg, compiled backend or not — the routing
    layer is identical either way.
    """

    @staticmethod
    def _session_logs(seeds, duration_s):
        from repro import (
            MPCAlgorithm,
            SessionConfig,
            StreamingSession,
            random_walk_trace,
            short_video,
        )

        video = short_video(duration_s=duration_s, seed=3)
        return [
            StreamingSession(
                video,
                MPCAlgorithm(),
                random_walk_trace(
                    mean_mbps=5.0, duration=300.0, seed=s, low=2.0, high=9.0
                ),
                SessionConfig(),
            ).run()
            for s in seeds
        ]

    @staticmethod
    def _counting(monkeypatch):
        from repro.core import _kernels

        monkeypatch.setattr(_kernels, "FORCE_PYTHON", True)
        entries = {"emission": 0, "fb": 0, "viterbi": 0, "ffbs": 0}
        for key, name in (
            ("emission", "emission_log_probs"),
            ("fb", "forward_backward_stack"),
            ("viterbi", "viterbi_stack"),
            ("ffbs", "ffbs_stack"),
        ):
            real = getattr(_kernels, name)

            def counting(*args, _real=real, _key=key, **kwargs):
                entries[_key] += 1
                return _real(*args, **kwargs)

            monkeypatch.setattr(_kernels, name, counting)
        return entries

    def test_one_entry_per_stack(self, monkeypatch):
        from repro import VeritasAbduction, paper_veritas_config
        from repro.core.abduction import sample_traces_batch

        entries = self._counting(monkeypatch)
        # Two length groups (different videos => different chunk counts):
        # 3 sessions of one length, 2 of another => 2 stacks.
        logs = self._session_logs((40, 41, 42), 90.0)
        logs += self._session_logs((43, 44), 60.0)
        n_stacks = len({log.n_chunks for log in logs})
        assert n_stacks == 2  # the corpus actually spans two lengths

        abduction = VeritasAbduction(paper_veritas_config(), kernel="compiled")
        posteriors = abduction.solve_batch(logs)
        assert entries["emission"] == 1, (
            f"{entries['emission']} emission kernel entries for one corpus; "
            f"the concatenated matrix must be built in a single call"
        )
        assert entries["fb"] == n_stacks, (
            f"{entries['fb']} forward-backward kernel entries for "
            f"{n_stacks} stacks; per-session Python re-entry has crept in"
        )
        assert entries["viterbi"] == n_stacks

        sample_traces_batch(
            posteriors, 6, list(range(len(logs))), kernel="compiled"
        )
        assert entries["ffbs"] == n_stacks, (
            f"{entries['ffbs']} FFBS kernel entries for {n_stacks} stacks; "
            f"the sampler must draw all samples of a stack in one call"
        )
