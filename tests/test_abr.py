"""Tests for the ABR algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr import (
    ABRContext,
    BBAAlgorithm,
    BOLAAlgorithm,
    HarmonicMeanPredictor,
    MPCAlgorithm,
    RandomABRAlgorithm,
    RateBasedAlgorithm,
    make_abr,
)
from repro.video import short_video


@pytest.fixture(scope="module")
def video():
    return short_video(duration_s=120.0, seed=4)


def ctx(video, buffer_s=3.0, capacity=5.0, last=None, tput=None, chunk=5):
    return ABRContext(
        chunk_index=chunk,
        buffer_s=buffer_s,
        buffer_capacity_s=capacity,
        last_quality=last,
        video=video,
        throughput_history_mbps=list(tput or []),
        download_time_history_s=[0.5] * len(tput or []),
    )


class TestHarmonicPredictor:
    def test_cold_start(self):
        p = HarmonicMeanPredictor()
        assert p.predict([]) == pytest.approx(p.cold_start_mbps)

    def test_harmonic_mean(self):
        p = HarmonicMeanPredictor(window=3)
        got = p.predict([2.0, 4.0, 4.0])
        assert got == pytest.approx(3.0)  # 3 / (1/2 + 1/4 + 1/4)

    def test_window_limits_history(self):
        p = HarmonicMeanPredictor(window=2)
        assert p.predict([100.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_error_discount_reduces_prediction(self):
        p = HarmonicMeanPredictor(window=5)
        first = p.predict([4.0])
        p.observe(1.0)  # actual was far below the prediction
        second = p.predict([4.0, 1.0])
        undiscounted = 2 / (1 / 4 + 1 / 1)
        assert second < undiscounted
        assert first > second

    def test_observe_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HarmonicMeanPredictor().observe(0.0)

    def test_reset_clears_errors(self):
        p = HarmonicMeanPredictor()
        p.predict([4.0])
        p.observe(1.0)
        p.reset()
        assert p.predict([4.0]) == pytest.approx(4.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            HarmonicMeanPredictor(window=0)


class TestBBA:
    def test_low_buffer_gives_lowest_quality(self, video):
        abr = BBAAlgorithm()
        assert abr.choose_quality(ctx(video, buffer_s=0.5)) == 0

    def test_high_buffer_gives_highest_quality(self, video):
        abr = BBAAlgorithm()
        q = abr.choose_quality(ctx(video, buffer_s=4.9))
        assert q == video.n_qualities - 1

    def test_monotone_in_buffer(self, video):
        abr = BBAAlgorithm()
        qs = [
            abr.choose_quality(ctx(video, buffer_s=b, capacity=30.0))
            for b in np.linspace(0, 30, 40)
        ]
        assert all(a <= b for a, b in zip(qs, qs[1:]))

    def test_ignores_throughput(self, video):
        abr = BBAAlgorithm()
        a = abr.choose_quality(ctx(video, buffer_s=3.0, tput=[0.1]))
        b = abr.choose_quality(ctx(video, buffer_s=3.0, tput=[50.0]))
        assert a == b

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            BBAAlgorithm(reservoir_fraction=0.9, upper_fraction=0.5)


class TestMPC:
    def test_infinite_bandwidth_gives_top_quality(self, video):
        abr = MPCAlgorithm()
        abr.reset()
        q = abr.choose_quality(
            ctx(video, buffer_s=4.0, tput=[1000.0] * 8)
        )
        assert q == video.n_qualities - 1

    def test_tiny_bandwidth_gives_bottom_quality(self, video):
        abr = MPCAlgorithm()
        abr.reset()
        q = abr.choose_quality(ctx(video, buffer_s=0.5, tput=[0.05] * 8))
        assert q == 0

    def test_cold_start_is_conservative(self, video):
        abr = MPCAlgorithm()
        abr.reset()
        q = abr.choose_quality(ctx(video, buffer_s=0.0, tput=[], chunk=0))
        assert q <= 2

    def test_horizon_truncated_at_video_end(self, video):
        abr = MPCAlgorithm(horizon=5)
        abr.reset()
        q = abr.choose_quality(
            ctx(video, buffer_s=3.0, tput=[5.0] * 5, chunk=video.n_chunks - 1)
        )
        assert 0 <= q < video.n_qualities

    def test_rejects_chunk_past_end(self, video):
        abr = MPCAlgorithm()
        abr.reset()
        with pytest.raises(ValueError):
            abr.choose_quality(ctx(video, chunk=video.n_chunks))

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            MPCAlgorithm(horizon=0)

    def test_robust_flag_changes_behaviour(self, video):
        robust = MPCAlgorithm(robust=True)
        plain = MPCAlgorithm(robust=False)
        robust.reset()
        plain.reset()
        history = [5.0, 1.0, 5.0, 1.0, 5.0]
        q_r = robust.choose_quality(ctx(video, buffer_s=2.0, tput=history))
        q_p = plain.choose_quality(ctx(video, buffer_s=2.0, tput=history))
        assert q_r <= q_p

    def test_more_buffer_never_lowers_quality(self, video):
        abr = MPCAlgorithm()
        history = [2.0] * 8
        qs = []
        for b in [0.5, 2.0, 4.0]:
            abr.reset()
            qs.append(abr.choose_quality(ctx(video, buffer_s=b, tput=history)))
        assert all(a <= b for a, b in zip(qs, qs[1:]))


class TestBOLA:
    def test_low_buffer_gives_lowest(self, video):
        abr = BOLAAlgorithm()
        abr.reset()
        assert abr.choose_quality(ctx(video, buffer_s=0.0)) == 0

    def test_high_buffer_gives_highest(self, video):
        abr = BOLAAlgorithm()
        abr.reset()
        q = abr.choose_quality(ctx(video, buffer_s=4.9, capacity=5.0))
        assert q == video.n_qualities - 1

    def test_monotone_in_buffer(self, video):
        abr = BOLAAlgorithm()
        abr.reset()
        qs = [
            abr.choose_quality(ctx(video, buffer_s=b, capacity=10.0))
            for b in np.linspace(0, 10, 30)
        ]
        assert all(a <= b for a, b in zip(qs, qs[1:]))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            BOLAAlgorithm(upper_fraction=0.0)


class TestRateBased:
    def test_picks_below_prediction(self, video):
        abr = RateBasedAlgorithm(safety=0.9)
        abr.reset()
        q = abr.choose_quality(ctx(video, tput=[2.0] * 5))
        assert video.bitrate_mbps(q) <= 2.0 * 0.9 + 1e-9

    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError):
            RateBasedAlgorithm(safety=1.5)


class TestRandomABR:
    def test_seeded_reproducibility(self, video):
        a = RandomABRAlgorithm(seed=5)
        b = RandomABRAlgorithm(seed=5)
        a.reset()
        b.reset()
        qa = [a.choose_quality(ctx(video, chunk=i)) for i in range(20)]
        qb = [b.choose_quality(ctx(video, chunk=i)) for i in range(20)]
        assert qa == qb

    def test_reset_replays_sequence(self, video):
        abr = RandomABRAlgorithm(seed=5)
        abr.reset()
        first = [abr.choose_quality(ctx(video, chunk=i)) for i in range(10)]
        abr.reset()
        second = [abr.choose_quality(ctx(video, chunk=i)) for i in range(10)]
        assert first == second

    def test_covers_the_ladder(self, video):
        abr = RandomABRAlgorithm(seed=6)
        abr.reset()
        qs = {abr.choose_quality(ctx(video, chunk=i % 50)) for i in range(300)}
        assert qs == set(range(video.n_qualities))


class TestRegistry:
    @pytest.mark.parametrize("name", ["mpc", "bba", "bola", "rate", "random"])
    def test_make_abr(self, name):
        assert make_abr(name).name == name

    def test_make_abr_case_insensitive(self):
        assert make_abr("MPC").name == "mpc"

    def test_make_abr_unknown(self):
        with pytest.raises(ValueError):
            make_abr("pensieve")
