"""Tests for the synthetic trace generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transitions import tridiagonal_matrix
from repro.net import (
    constant_trace,
    markov_trace_from_matrix,
    random_walk_trace,
    square_wave_trace,
    trace_corpus,
)
from repro.workloads import bimodal_corpus, paper_corpus, wide_corpus


class TestBasicGenerators:
    def test_constant(self):
        tr = constant_trace(18.0, 100.0)
        assert tr.value_at(50.0) == 18.0
        assert tr.duration == 100.0

    def test_square_wave_alternates(self):
        tr = square_wave_trace(1.0, 5.0, period=10.0, duration=40.0)
        assert tr.value_at(5.0) == 1.0
        assert tr.value_at(15.0) == 5.0
        assert tr.value_at(25.0) == 1.0

    def test_square_wave_start_high(self):
        tr = square_wave_trace(1.0, 5.0, period=10.0, duration=20.0, start_high=True)
        assert tr.value_at(5.0) == 5.0

    def test_square_wave_rejects_bad_period(self):
        with pytest.raises(ValueError):
            square_wave_trace(1.0, 5.0, period=0.0, duration=10.0)


class TestRandomWalk:
    def test_deterministic_with_seed(self):
        a = random_walk_trace(5.0, 300.0, seed=1)
        b = random_walk_trace(5.0, 300.0, seed=1)
        assert np.array_equal(a.values, b.values)

    def test_respects_bounds(self):
        tr = random_walk_trace(5.0, 2000.0, low=3.0, high=7.0, seed=2)
        assert tr.values.min() >= 3.0
        assert tr.values.max() <= 7.0

    def test_stays_near_mean(self):
        tr = random_walk_trace(5.0, 5000.0, seed=3, low=0.5, high=20.0)
        assert 3.0 <= tr.mean() <= 7.0

    def test_rejects_mean_outside_bounds(self):
        with pytest.raises(ValueError):
            random_walk_trace(20.0, 100.0, low=1.0, high=10.0)

    def test_rejects_bad_stay_prob(self):
        with pytest.raises(ValueError):
            random_walk_trace(5.0, 100.0, stay_prob=1.5)

    def test_dips_reach_dip_range(self):
        tr = random_walk_trace(
            6.0, 5000.0, seed=4, low=3.0, high=9.0,
            dip_prob=0.2, dip_range_mbps=(1.0, 1.5), dip_windows=(2, 3),
        )
        assert tr.values.min() <= 1.5

    def test_no_dips_when_disabled(self):
        tr = random_walk_trace(6.0, 5000.0, seed=4, low=3.0, high=9.0, dip_prob=0.0)
        assert tr.values.min() >= 3.0

    def test_dip_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            random_walk_trace(5.0, 100.0, dip_prob=0.1, dip_windows=(3, 2))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25)
    def test_steps_are_on_grid(self, seed):
        tr = random_walk_trace(
            5.0, 500.0, step_mbps=0.5, seed=seed, low=0.5, high=10.0
        )
        # Without dips every value is mean + k * 0.5 for integer k.
        offsets = (tr.values - 5.0) / 0.5
        assert np.allclose(offsets, np.round(offsets))


class TestMarkovFromMatrix:
    def test_states_follow_support(self):
        matrix = tridiagonal_matrix(5, stay_prob=0.9, jump_mass=0.0)
        tr = markov_trace_from_matrix(matrix, epsilon=1.0, duration=500.0, seed=0)
        # Tridiagonal walk: consecutive values differ by at most one step.
        diffs = np.abs(np.diff(tr.values))
        assert diffs.max() <= 1.0 + 1e-12

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            markov_trace_from_matrix(np.ones((2, 3)), 1.0, 10.0)

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            markov_trace_from_matrix(np.eye(3) * 0.5, 1.0, 10.0)

    def test_initial_state_respected(self):
        matrix = np.eye(4)
        tr = markov_trace_from_matrix(
            matrix, epsilon=2.0, duration=50.0, initial_state=3, seed=0
        )
        assert np.all(tr.values == 6.0)

    def test_rejects_bad_initial_state(self):
        with pytest.raises(ValueError):
            markov_trace_from_matrix(np.eye(2), 1.0, 10.0, initial_state=5)


class TestCorpora:
    def test_trace_corpus_count_and_determinism(self):
        a = trace_corpus(5, (3.0, 8.0), 100.0, seed=9)
        b = trace_corpus(5, (3.0, 8.0), 100.0, seed=9)
        assert len(a) == 5
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.values, tb.values)

    def test_trace_corpus_rejects_zero_count(self):
        with pytest.raises(ValueError):
            trace_corpus(0, (1.0, 2.0), 10.0)

    def test_trace_corpus_rejects_bad_range(self):
        with pytest.raises(ValueError):
            trace_corpus(1, (5.0, 2.0), 10.0)

    def test_paper_corpus_ranges(self):
        traces = paper_corpus(count=10, duration_s=600.0, seed=5)
        assert len(traces) == 10
        means = [t.mean() for t in traces]
        assert min(means) > 1.0
        assert max(means) < 9.5

    def test_bimodal_corpus_modes_are_separated(self):
        poor, good = bimodal_corpus(count_per_mode=5, duration_s=300.0, seed=5)
        assert len(poor) == 5 and len(good) == 5
        assert max(t.values.max() for t in poor) <= 0.3
        assert min(t.values.min() for t in good) >= 9.0

    def test_wide_corpus_spans_range(self):
        traces = wide_corpus(count=30, duration_s=300.0, seed=5)
        means = [t.mean() for t in traces]
        assert min(means) < 2.5
        assert max(means) > 7.5
