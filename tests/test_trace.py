"""Unit and property tests for PiecewiseConstantTrace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import PiecewiseConstantTrace
from repro.util import transfer_bytes


@pytest.fixture
def simple_trace():
    return PiecewiseConstantTrace.from_uniform([5.0, 1.0, 10.0], 5.0)


class TestConstruction:
    def test_from_uniform_bounds(self, simple_trace):
        assert simple_trace.start_time == 0.0
        assert simple_trace.end_time == 15.0
        assert len(simple_trace) == 3

    def test_constant(self):
        tr = PiecewiseConstantTrace.constant(4.0, 60.0)
        assert tr.value_at(30.0) == 4.0
        assert tr.duration == 60.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PiecewiseConstantTrace([0, 1, 2], [1.0])

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            PiecewiseConstantTrace([0, 2, 1], [1.0, 2.0])

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            PiecewiseConstantTrace([0, 1], [-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PiecewiseConstantTrace([0], [])

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            PiecewiseConstantTrace.from_uniform([1.0], 0.0)


class TestQueries:
    def test_value_at_interior(self, simple_trace):
        assert simple_trace.value_at(2.0) == 5.0
        assert simple_trace.value_at(7.0) == 1.0
        assert simple_trace.value_at(12.0) == 10.0

    def test_value_at_boundaries(self, simple_trace):
        # Left-closed intervals: value at t_i belongs to interval i.
        assert simple_trace.value_at(5.0) == 1.0
        assert simple_trace.value_at(10.0) == 10.0

    def test_value_clamps_outside(self, simple_trace):
        assert simple_trace.value_at(-3.0) == 5.0
        assert simple_trace.value_at(100.0) == 10.0

    def test_values_at_vectorised(self, simple_trace):
        vals = simple_trace.values_at([2.0, 7.0, 12.0])
        assert list(vals) == [5.0, 1.0, 10.0]

    def test_mean_is_time_weighted(self, simple_trace):
        assert simple_trace.mean() == pytest.approx((5 + 1 + 10) / 3)

    def test_average_sub_interval(self, simple_trace):
        # [4, 6]: one second at 5, one second at 1 -> 3 Mbps average.
        assert simple_trace.average(4.0, 6.0) == pytest.approx(3.0)

    def test_average_degenerate_interval(self, simple_trace):
        assert simple_trace.average(2.0, 2.0) == 5.0

    def test_integrate_bytes_one_interval(self, simple_trace):
        expected = transfer_bytes(5.0, 2.0)
        assert simple_trace.integrate_bytes(1.0, 3.0) == pytest.approx(expected)

    def test_integrate_bytes_across_intervals(self, simple_trace):
        expected = transfer_bytes(5.0, 5.0) + transfer_bytes(1.0, 5.0)
        assert simple_trace.integrate_bytes(0.0, 10.0) == pytest.approx(expected)

    def test_integrate_beyond_end_holds_last(self, simple_trace):
        expected = transfer_bytes(10.0, 5.0)
        assert simple_trace.integrate_bytes(15.0, 20.0) == pytest.approx(expected)

    def test_integrate_rejects_reversed(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.integrate_bytes(5.0, 1.0)


class TestTimeToTransfer:
    def test_zero_bytes(self, simple_trace):
        assert simple_trace.time_to_transfer(0.0, 0.0) == 0.0

    def test_within_first_interval(self, simple_trace):
        size = transfer_bytes(5.0, 2.0)
        assert simple_trace.time_to_transfer(0.0, size) == pytest.approx(2.0)

    def test_spans_intervals(self, simple_trace):
        size = transfer_bytes(5.0, 5.0) + transfer_bytes(1.0, 2.5)
        assert simple_trace.time_to_transfer(0.0, size) == pytest.approx(7.5)

    def test_start_past_end(self, simple_trace):
        size = transfer_bytes(10.0, 1.0)
        assert simple_trace.time_to_transfer(20.0, size) == pytest.approx(1.0)

    def test_zero_interval_is_skipped(self):
        tr = PiecewiseConstantTrace.from_uniform([5.0, 0.0, 5.0], 1.0)
        size = transfer_bytes(5.0, 1.5)
        # 1 s at 5, 1 s stalled at 0, 0.5 s at 5.
        assert tr.time_to_transfer(0.0, size) == pytest.approx(2.5)

    def test_trailing_zero_raises(self):
        tr = PiecewiseConstantTrace.from_uniform([5.0, 0.0], 1.0)
        with pytest.raises(RuntimeError):
            tr.time_to_transfer(0.0, transfer_bytes(5.0, 10.0))

    def test_rejects_negative_size(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.time_to_transfer(0.0, -1.0)

    def test_inverse_of_integrate(self, simple_trace):
        for start in [0.0, 2.5, 6.0, 11.0]:
            for dt in [0.5, 3.0, 8.0, 20.0]:
                size = simple_trace.integrate_bytes(start, start + dt)
                got = simple_trace.time_to_transfer(start, size)
                assert got == pytest.approx(dt, abs=1e-6)


class TestTransformations:
    def test_quantized(self, simple_trace):
        tr = PiecewiseConstantTrace.from_uniform([1.2, 1.4], 1.0).quantized(0.5)
        assert list(tr.values) == [1.0, 1.5]

    def test_quantized_rejects_bad_epsilon(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.quantized(0.0)

    def test_resampled_preserves_mean(self, simple_trace):
        fine = simple_trace.resampled(1.0)
        assert fine.mean() == pytest.approx(simple_trace.mean())
        assert len(fine) == 15

    def test_extended_holds_last(self, simple_trace):
        ext = simple_trace.extended(30.0)
        assert ext.value_at(29.0) == 10.0
        assert ext.end_time == 30.0

    def test_extended_noop_if_shorter(self, simple_trace):
        assert simple_trace.extended(10.0) is simple_trace

    def test_shifted(self, simple_trace):
        sh = simple_trace.shifted(100.0)
        assert sh.value_at(102.0) == 5.0
        assert sh.start_time == 100.0

    def test_clipped(self, simple_trace):
        cl = simple_trace.clipped(2.0, 6.0)
        assert list(cl.values) == [5.0, 2.0, 6.0]

    def test_clipped_rejects_inverted(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.clipped(5.0, 1.0)

    def test_mae_zero_for_identical(self, simple_trace):
        assert simple_trace.mean_absolute_error(simple_trace) == 0.0


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------

trace_values = st.lists(
    st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20
)


@given(values=trace_values, interval=st.floats(min_value=0.1, max_value=10.0))
def test_mean_within_bounds(values, interval):
    tr = PiecewiseConstantTrace.from_uniform(values, interval)
    assert min(values) - 1e-9 <= tr.mean() <= max(values) + 1e-9


@given(
    values=trace_values,
    start=st.floats(min_value=0.0, max_value=50.0),
    dt=st.floats(min_value=0.01, max_value=50.0),
)
@settings(max_examples=60)
def test_transfer_round_trip_property(values, start, dt):
    tr = PiecewiseConstantTrace.from_uniform(values, 1.0)
    size = tr.integrate_bytes(start, start + dt)
    assert tr.time_to_transfer(start, size) == pytest.approx(dt, abs=1e-6)


@given(values=trace_values)
def test_quantization_error_bounded(values):
    tr = PiecewiseConstantTrace.from_uniform(values, 1.0)
    q = tr.quantized(0.5)
    assert np.all(np.abs(q.values - tr.values) <= 0.25 + 1e-12)


@given(
    values=trace_values,
    t0=st.floats(min_value=-5.0, max_value=30.0),
    t1=st.floats(min_value=-5.0, max_value=30.0),
)
def test_integrate_is_additive(values, t0, t1):
    if t1 < t0:
        t0, t1 = t1, t0
    tr = PiecewiseConstantTrace.from_uniform(values, 1.0)
    mid = (t0 + t1) / 2
    whole = tr.integrate_bytes(t0, t1)
    parts = tr.integrate_bytes(t0, mid) + tr.integrate_bytes(mid, t1)
    assert whole == pytest.approx(parts, rel=1e-9, abs=1e-6)
