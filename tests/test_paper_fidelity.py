"""Tests that encode the paper's structural claims directly.

These are not generic software tests: each one pins an assertion the paper
makes about the *method* — what information abduction may use, what it must
not depend on, and which §4.1 defaults define the reference configuration.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import (
    SessionLog,
    VeritasAbduction,
    VeritasConfig,
    paper_veritas_config,
)
from repro.player.logs import ChunkRecord


class TestNoGroundTruthLeakage:
    """README/§3.3 claim: Veritas only ever sees what a deployment logs."""

    def test_session_log_has_no_bandwidth_field(self, mpc_log):
        payload = json.dumps(mpc_log.to_dict()).lower()
        # buffer_capacity_s is a *player* parameter; network-side truth
        # identifiers must be absent.
        for forbidden in ("gtbw", "ground_truth", "groundtruth", "bandwidth",
                          "trace"):
            assert forbidden not in payload

    def test_chunk_record_fields_are_observables_only(self):
        names = {f.name for f in dataclasses.fields(ChunkRecord)}
        assert names == {
            "index",
            "quality",
            "size_bytes",
            "start_time_s",
            "end_time_s",
            "tcp_state",
            "buffer_before_s",
            "buffer_after_s",
            "rebuffer_s",
            "ssim",
            "bitrate_mbps",
        }


class TestBufferNotNeeded:
    """Appendix A.2: "we do not actually need to log B_{s_{1:N}} since
    s_{1:N} is necessary and sufficient" — the abduction must be invariant
    to the logged buffer values."""

    def _with_zeroed_buffers(self, log: SessionLog) -> SessionLog:
        records = [
            dataclasses.replace(r, buffer_before_s=0.0, buffer_after_s=0.0)
            for r in log.records
        ]
        return dataclasses.replace(log, records=records)

    def test_posterior_invariant_to_buffer_values(self, mpc_log):
        veritas = VeritasAbduction(paper_veritas_config())
        original = veritas.solve(mpc_log)
        zeroed = veritas.solve(self._with_zeroed_buffers(mpc_log))
        assert np.array_equal(original.viterbi.states, zeroed.viterbi.states)
        assert np.allclose(original.smoothing.gamma, zeroed.smoothing.gamma)
        assert original.log_likelihood == pytest.approx(zeroed.log_likelihood)

    def test_posterior_invariant_to_ssim_and_quality(self, mpc_log):
        """Quality labels are outcomes, not inputs, of the inversion."""
        records = [
            dataclasses.replace(r, ssim=0.5, quality=0, bitrate_mbps=0.1)
            for r in mpc_log.records
        ]
        scrubbed = dataclasses.replace(mpc_log, records=records)
        veritas = VeritasAbduction(paper_veritas_config())
        original = veritas.solve(mpc_log)
        altered = veritas.solve(scrubbed)
        assert np.array_equal(original.viterbi.states, altered.viterbi.states)


class TestPaperDefaults:
    """§4.1: δ=5 s, ε=0.5 Mbps, σ=0.5, tridiagonal A, uniform u, K=5."""

    def test_reference_configuration(self):
        config = paper_veritas_config()
        assert config.delta_s == 5.0
        assert config.epsilon_mbps == 0.5
        assert config.sigma_mbps == 0.5
        assert config.transition_kind == "tridiagonal"

    def test_initial_distribution_is_uniform(self):
        veritas = VeritasAbduction(paper_veritas_config())
        initial = veritas.transitions.initial
        assert np.allclose(initial, initial[0])

    def test_grid_matches_epsilon_example(self):
        """§3.2: "ε = 0.5 implies hidden states {0.0, 0.5, 1.0, ...}"."""
        veritas = VeritasAbduction(VeritasConfig())
        values = veritas.grid.values_mbps
        assert values[0] == 0.0
        assert values[1] == 0.5
        assert np.allclose(np.diff(values), 0.5)


class TestAlgorithmOneAnchor:
    """Algorithm 1 anchors the final chunk at the Viterbi state."""

    def test_every_sample_shares_the_viterbi_last_state(self, solved_posterior):
        last = solved_posterior.viterbi.states[-1]
        problem = solved_posterior.problem
        last_value = problem.grid.value_of(int(last))
        for seed in range(5):
            trace = solved_posterior.sample_trace(seed=seed)
            # The sampled capacity at the final chunk's start time must be
            # the Viterbi state's value (up to interpolation within the
            # shared window).
            t_last = float(problem.start_times_s[-1])
            assert trace.value_at(t_last) == pytest.approx(
                last_value, abs=problem.grid.epsilon_mbps
            )
