"""Tests for the capacity grid and transition models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    CapacityGrid,
    TransitionModel,
    sticky_matrix,
    tridiagonal_matrix,
    uniform_matrix,
)


class TestCapacityGrid:
    def test_paper_example(self):
        grid = CapacityGrid(epsilon_mbps=0.5, max_mbps=10.0)
        assert grid.n_states == 21
        assert grid.value_of(0) == 0.0
        assert grid.value_of(1) == 0.5
        assert grid.max_mbps == 10.0

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            CapacityGrid(epsilon_mbps=0.0)

    def test_rejects_max_below_epsilon(self):
        with pytest.raises(ValueError):
            CapacityGrid(epsilon_mbps=1.0, max_mbps=0.5)

    def test_non_multiple_max_rounds_up(self):
        grid = CapacityGrid(epsilon_mbps=0.4, max_mbps=1.0)
        assert grid.max_mbps == pytest.approx(1.2)

    def test_index_of_nearest(self):
        grid = CapacityGrid(0.5, 10.0)
        assert grid.index_of(1.3) == 3  # 1.5
        assert grid.index_of(1.2) == 2  # 1.0
        assert grid.index_of(-5.0) == 0
        assert grid.index_of(99.0) == grid.n_states - 1

    def test_quantize_round_trip(self):
        grid = CapacityGrid(0.5, 10.0)
        assert grid.quantize(3.74) == 3.5
        assert grid.quantize(3.76) == 4.0

    def test_values_of_vectorised(self):
        grid = CapacityGrid(0.5, 10.0)
        assert list(grid.values_of(np.array([0, 2, 4]))) == [0.0, 1.0, 2.0]

    def test_values_of_rejects_out_of_range(self):
        grid = CapacityGrid(0.5, 10.0)
        with pytest.raises(IndexError):
            grid.values_of(np.array([99]))

    def test_value_of_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            CapacityGrid(0.5, 10.0).value_of(21)

    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_quantization_error_bound(self, mbps):
        grid = CapacityGrid(0.5, 10.0)
        assert abs(grid.quantize(mbps) - mbps) <= 0.25 + 1e-12


class TestMatrixBuilders:
    @pytest.mark.parametrize("n", [1, 2, 5, 21])
    def test_tridiagonal_rows_sum_to_one(self, n):
        m = tridiagonal_matrix(n)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_tridiagonal_band_structure(self):
        m = tridiagonal_matrix(6, stay_prob=0.8, jump_mass=0.0)
        for i in range(6):
            for j in range(6):
                if abs(i - j) > 1:
                    assert m[i, j] == 0.0

    def test_tridiagonal_jump_mass_fills_matrix(self):
        m = tridiagonal_matrix(6, jump_mass=0.02)
        assert np.all(m > 0)
        # The band still dominates.
        assert m[2, 2] > 10 * m[2, 5]

    def test_tridiagonal_rejects_bad_stay(self):
        with pytest.raises(ValueError):
            tridiagonal_matrix(5, stay_prob=0.0)

    def test_tridiagonal_rejects_bad_jump(self):
        with pytest.raises(ValueError):
            tridiagonal_matrix(5, jump_mass=1.0)

    def test_uniform_matrix(self):
        m = uniform_matrix(4)
        assert np.allclose(m, 0.25)

    def test_sticky_matrix(self):
        m = sticky_matrix(5, stay_prob=0.9)
        assert np.allclose(np.diag(m), 0.9)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_sticky_single_state(self):
        assert sticky_matrix(1)[0, 0] == 1.0


class TestTransitionModel:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            TransitionModel(np.eye(3) * 0.5)

    def test_rejects_negative_entries(self):
        m = np.array([[1.5, -0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            TransitionModel(m)

    def test_default_initial_is_uniform(self):
        model = TransitionModel(tridiagonal_matrix(4))
        assert np.allclose(model.initial, 0.25)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            TransitionModel(tridiagonal_matrix(3), initial=np.array([0.5, 0.5, 0.5]))

    def test_power_zero_is_identity(self):
        model = TransitionModel(tridiagonal_matrix(5))
        assert np.allclose(model.power(0), np.eye(5))

    def test_power_one_is_matrix(self):
        m = tridiagonal_matrix(5)
        model = TransitionModel(m)
        assert np.allclose(model.power(1), m)

    def test_power_composition(self):
        m = tridiagonal_matrix(6, stay_prob=0.7)
        model = TransitionModel(m)
        assert np.allclose(model.power(3), m @ m @ m)

    def test_power_rejects_negative(self):
        with pytest.raises(ValueError):
            TransitionModel(tridiagonal_matrix(3)).power(-1)

    def test_powers_are_cached(self):
        model = TransitionModel(tridiagonal_matrix(4))
        assert model.power(7) is model.power(7)

    def test_powers_remain_stochastic(self):
        model = TransitionModel(tridiagonal_matrix(8, stay_prob=0.6))
        for delta in [1, 2, 5, 20, 100]:
            assert np.allclose(model.power(delta).sum(axis=1), 1.0)

    def test_log_power_matches_log_of_power(self):
        model = TransitionModel(tridiagonal_matrix(5))
        lp = model.log_power(2)
        assert np.allclose(np.exp(lp), model.power(2), atol=1e-12)

    def test_expected_next_value(self):
        # Deterministic chain: state i -> state i+1 (absorbing at end).
        m = np.zeros((3, 3))
        m[0, 1] = 1.0
        m[1, 2] = 1.0
        m[2, 2] = 1.0
        model = TransitionModel(m)
        values = np.array([0.0, 1.0, 2.0])
        assert model.expected_next_value(0, 1, values) == pytest.approx(1.0)
        assert model.expected_next_value(0, 2, values) == pytest.approx(2.0)
        assert model.expected_next_value(0, 0, values) == pytest.approx(0.0)

    def test_expected_next_rejects_bad_state(self):
        model = TransitionModel(tridiagonal_matrix(3))
        with pytest.raises(IndexError):
            model.expected_next_value(5, 1, np.zeros(3))

    def test_uniform_mixing_limit(self):
        """A tridiagonal chain with jumps mixes toward its stationary law."""
        model = TransitionModel(tridiagonal_matrix(5, stay_prob=0.5, jump_mass=0.1))
        p_big = model.power(500)
        # All rows converge to the same stationary distribution.
        assert np.allclose(p_big[0], p_big[4], atol=1e-6)
