"""Tests for the extension features: model selection and the Veritas ABR."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    VeritasConfig,
    compute_metrics,
    constant_trace,
    make_abr,
    random_walk_trace,
)
from repro.abr import VeritasABRAlgorithm
from repro.core import score_config, select_config, sigma_grid_search
from repro.video import short_video


@pytest.fixture(scope="module")
def training_logs():
    video = short_video(duration_s=120.0, seed=2)
    logs = []
    for seed, mean in [(1, 4.0), (2, 6.0)]:
        trace = random_walk_trace(mean, 600.0, seed=seed, low=2.0, high=9.0)
        logs.append(
            StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        )
    return logs


class TestModelSelection:
    def test_score_config_finite(self, training_logs):
        score = score_config(VeritasConfig(), training_logs)
        assert np.isfinite(score)

    def test_score_rejects_empty_logs(self):
        with pytest.raises(ValueError):
            score_config(VeritasConfig(), [])

    def test_select_orders_best_first(self, training_logs):
        candidates = [
            VeritasConfig(sigma_mbps=0.5),
            VeritasConfig(sigma_mbps=25.0),
        ]
        scored = select_config(candidates, training_logs)
        assert scored[0].log_likelihood >= scored[1].log_likelihood
        # The absurd sigma must not win.
        assert scored[0].config.sigma_mbps == 0.5

    def test_select_rejects_mixed_grids(self, training_logs):
        candidates = [VeritasConfig(), VeritasConfig(delta_s=10.0)]
        with pytest.raises(ValueError):
            select_config(candidates, training_logs)

    def test_select_rejects_empty_candidates(self, training_logs):
        with pytest.raises(ValueError):
            select_config([], training_logs)

    def test_sigma_grid_search_returns_sane_choice(self, training_logs):
        best = sigma_grid_search(
            VeritasConfig(),
            training_logs,
            sigmas=(0.5, 10.0),
            stay_probs=(0.8,),
        )
        assert best.config.sigma_mbps == 0.5
        assert "sigma" in best.describe()

    def test_sigma_grid_search_rejects_empty_grid(self, training_logs):
        with pytest.raises(ValueError):
            sigma_grid_search(VeritasConfig(), training_logs, sigmas=())


class TestVeritasABR:
    def test_registered_in_factory(self):
        assert make_abr("veritas-abr").name == "veritas-abr"

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VeritasABRAlgorithm(reabduct_every=0)
        with pytest.raises(ValueError):
            VeritasABRAlgorithm(safety=0.0)

    def test_runs_a_full_session(self):
        video = short_video(duration_s=60.0, seed=3)
        trace = constant_trace(5.0, 600.0)
        abr = VeritasABRAlgorithm(reabduct_every=5)
        log = StreamingSession(video, abr, trace, SessionConfig()).run()
        assert log.n_chunks == video.n_chunks
        metrics = compute_metrics(log)
        assert metrics.mean_ssim > 0.9

    def test_adapts_to_bandwidth(self):
        """Higher capacity must yield at least as high average quality."""
        video = short_video(duration_s=120.0, seed=3)
        results = {}
        for mbps in [0.8, 6.0]:
            abr = VeritasABRAlgorithm(reabduct_every=5)
            log = StreamingSession(
                video, abr, constant_trace(mbps, 2000.0), SessionConfig()
            ).run()
            results[mbps] = compute_metrics(log)
        assert (
            results[6.0].avg_bitrate_mbps > results[0.8].avg_bitrate_mbps
        )
        assert results[0.8].rebuffer_percent < 5.0

    def test_competitive_with_mpc_on_stable_link(self):
        video = short_video(duration_s=120.0, seed=3)
        trace = constant_trace(4.0, 2000.0)
        v_log = StreamingSession(
            video, VeritasABRAlgorithm(reabduct_every=5), trace, SessionConfig()
        ).run()
        m_log = StreamingSession(
            video, MPCAlgorithm(), trace, SessionConfig()
        ).run()
        v_m = compute_metrics(v_log)
        m_m = compute_metrics(m_log)
        # Same ballpark quality, no rebuffering catastrophe.
        assert v_m.mean_ssim > m_m.mean_ssim - 0.01
        assert v_m.rebuffer_percent <= m_m.rebuffer_percent + 2.0

    def test_reset_clears_state(self):
        video = short_video(duration_s=60.0, seed=3)
        abr = VeritasABRAlgorithm(reabduct_every=3)
        StreamingSession(video, abr, constant_trace(5.0, 600.0), SessionConfig()).run()
        assert abr._records  # populated by the feedback hook
        abr.reset()
        assert not abr._records
