"""Tests for the player substrate: buffer, session simulator, logs, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BBAAlgorithm,
    MPCAlgorithm,
    SessionConfig,
    SessionLog,
    StreamingSession,
    compute_metrics,
    constant_trace,
    random_walk_trace,
)
from repro.player import PlayerBuffer
from repro.video import short_video


@pytest.fixture(scope="module")
def video():
    return short_video(duration_s=120.0, seed=4)


class TestPlayerBuffer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PlayerBuffer(0.0)

    def test_no_drain_before_playback(self):
        buf = PlayerBuffer(5.0)
        assert buf.drain(10.0) == 0.0
        assert buf.total_rebuffer_s == 0.0

    def test_drain_counts_stall(self):
        buf = PlayerBuffer(5.0)
        buf.append_chunk(2.0)
        buf.start_playback()
        stall = buf.drain(3.0)
        assert stall == pytest.approx(1.0)
        assert buf.level_s == 0.0
        assert buf.total_rebuffer_s == pytest.approx(1.0)

    def test_drain_no_stall(self):
        buf = PlayerBuffer(5.0)
        buf.append_chunk(4.0)
        buf.start_playback()
        assert buf.drain(2.0) == 0.0
        assert buf.level_s == pytest.approx(2.0)

    def test_drain_rejects_negative(self):
        buf = PlayerBuffer(5.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)

    def test_append_rejects_nonpositive(self):
        buf = PlayerBuffer(5.0)
        with pytest.raises(ValueError):
            buf.append_chunk(0.0)

    def test_overflow_wait(self):
        buf = PlayerBuffer(5.0)
        for _ in range(4):
            buf.append_chunk(2.0)
        assert buf.overflow_wait_s() == pytest.approx(3.0)


class TestSessionConfig:
    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            SessionConfig(buffer_capacity_s=0.0)

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            SessionConfig(rtt_s=-1.0)


class TestStreamingSession:
    def test_produces_one_record_per_chunk(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, SessionConfig()).run()
        assert log.n_chunks == video.n_chunks
        assert [r.index for r in log.records] == list(range(video.n_chunks))

    def test_chunks_are_time_ordered(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        starts = log.start_times_s()
        ends = log.end_times_s()
        assert np.all(ends > starts)
        assert np.all(starts[1:] >= ends[:-1] - 1e-9)

    def test_no_rebuffering_on_fast_link(self, video):
        trace = constant_trace(50.0, 1000.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, SessionConfig()).run()
        assert log.total_rebuffer_s == 0.0

    def test_rebuffering_on_slow_link(self, video):
        # Lowest rung is 0.1 Mbps; a 0.12 Mbps link with request overheads
        # cannot sustain even that in real time.
        trace = constant_trace(0.12, 10_000.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, SessionConfig()).run()
        assert log.total_rebuffer_s > 0.0

    def test_buffer_capacity_respected_at_request_time(self, video):
        trace = constant_trace(10.0, 1000.0)
        config = SessionConfig(buffer_capacity_s=5.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, config).run()
        for record in log.records:
            assert record.buffer_before_s <= config.buffer_capacity_s + 1e-6

    def test_buffer_never_negative(self, video):
        trace = random_walk_trace(2.0, 1000.0, seed=8, low=0.3, high=6.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        for record in log.records:
            assert record.buffer_before_s >= 0.0
            assert record.buffer_after_s >= 0.0

    def test_rebuffer_accounting_consistent(self, video):
        trace = random_walk_trace(1.0, 2000.0, seed=9, low=0.2, high=3.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        per_chunk = sum(r.rebuffer_s for r in log.records)
        assert per_chunk == pytest.approx(log.total_rebuffer_s, abs=1e-6)

    def test_bigger_buffer_reduces_rebuffering(self, video):
        trace = random_walk_trace(
            1.5, 2000.0, seed=10, low=0.3, high=4.0,
            dip_prob=0.1, dip_range_mbps=(0.2, 0.5),
        )
        small = StreamingSession(
            video, MPCAlgorithm(), trace, SessionConfig(buffer_capacity_s=5.0)
        ).run()
        large = StreamingSession(
            video, MPCAlgorithm(), trace, SessionConfig(buffer_capacity_s=30.0)
        ).run()
        assert large.total_rebuffer_s <= small.total_rebuffer_s + 1e-6

    def test_tcp_state_logged_with_idle_gaps(self, video):
        trace = constant_trace(20.0, 1000.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, SessionConfig()).run()
        # On a fast link the buffer fills and the player sleeps between
        # requests, so most chunks should observe an idle gap.
        gaps = [r.tcp_state.time_since_last_send_s for r in log.records[10:]]
        assert np.median(gaps) > 0.5

    def test_startup_time_is_first_chunk_end(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        assert log.startup_time_s == pytest.approx(log.records[0].end_time_s)

    def test_invalid_quality_from_abr_raises(self, video):
        class BadABR(BBAAlgorithm):
            def choose_quality(self, context):
                return 99

        trace = constant_trace(6.0, 1000.0)
        with pytest.raises(ValueError):
            StreamingSession(video, BadABR(), trace, SessionConfig()).run()


class TestSessionLog:
    def test_serialisation_round_trip(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        restored = SessionLog.from_dict(log.to_dict())
        assert restored.n_chunks == log.n_chunks
        assert restored.records[5] == log.records[5]
        assert restored.total_rebuffer_s == log.total_rebuffer_s

    def test_truncated_prefix(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        prefix = log.truncated(10)
        assert prefix.n_chunks == 10
        assert prefix.records[-1] == log.records[9]

    def test_truncated_rejects_too_long(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        with pytest.raises(ValueError):
            log.truncated(log.n_chunks + 1)

    def test_out_of_order_records_rejected(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        data = log.to_dict()
        data["records"] = [data["records"][1], data["records"][0]]
        with pytest.raises(ValueError):
            SessionLog.from_dict(data)

    def test_throughput_matches_size_over_time(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        r = log.records[3]
        assert r.throughput_mbps == pytest.approx(
            r.size_bytes * 8 / 1e6 / r.download_time_s
        )


class TestMetrics:
    def test_no_stalls_zero_ratio(self, video):
        trace = constant_trace(50.0, 1000.0)
        log = StreamingSession(video, BBAAlgorithm(), trace, SessionConfig()).run()
        metrics = compute_metrics(log)
        assert metrics.rebuffer_ratio == 0.0
        assert metrics.rebuffer_percent == 0.0

    def test_ssim_within_ladder_range(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        metrics = compute_metrics(log)
        assert 0.87 < metrics.mean_ssim < 1.0

    def test_avg_bitrate_sane(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        metrics = compute_metrics(log)
        assert 0.1 <= metrics.avg_bitrate_mbps <= 6.0

    def test_faster_link_higher_ssim(self, video):
        slow = StreamingSession(
            video, MPCAlgorithm(), constant_trace(0.8, 2000.0), SessionConfig()
        ).run()
        fast = StreamingSession(
            video, MPCAlgorithm(), constant_trace(8.0, 2000.0), SessionConfig()
        ).run()
        assert compute_metrics(fast).mean_ssim > compute_metrics(slow).mean_ssim

    def test_rejects_empty_log(self):
        log = SessionLog(
            abr_name="x",
            buffer_capacity_s=5.0,
            chunk_duration_s=2.0,
            rtt_s=0.08,
            startup_time_s=0.0,
            total_rebuffer_s=0.0,
            records=[],
        )
        with pytest.raises(ValueError):
            compute_metrics(log)

    def test_quality_switch_count(self, video):
        trace = constant_trace(6.0, 1000.0)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        metrics = compute_metrics(log)
        manual = int(np.count_nonzero(np.diff(log.qualities())))
        assert metrics.quality_switches == manual
