"""Tests for ``scripts/bench_compare.py``.

The comparison gates on two things: throughput regressions beyond the
threshold, and metrics that silently vanish between snapshots (the way a
regression escapes the gate entirely).  ``--allow-missing`` tolerates the
latter for intentional renames.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "scripts" / "bench_compare.py"
)
assert _spec is not None and _spec.loader is not None
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def snapshot(tmp_path: Path, name: str, benchmarks: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": bench, "extra_info": extra, "stats": {"mean": 0.1}}
            for bench, extra in benchmarks.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


BASE = {"replay": {"chunks_per_sec": 100.0, "setup_ms": 5.0}}


def run(old: Path, new: Path, *extra: str) -> int:
    return bench_compare.main([str(old), str(new), *extra])


class TestRegressionGate:
    def test_identical_snapshots_pass(self, tmp_path, capsys):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(tmp_path, "new.json", BASE)
        assert run(old, new) == 0
        assert "no throughput regressions" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, tmp_path, capsys):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(
            tmp_path, "new.json", {"replay": {"chunks_per_sec": 50.0}}
        )
        assert run(old, new, "--allow-missing") == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_small_drop_within_threshold_passes(self, tmp_path):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(
            tmp_path,
            "new.json",
            {"replay": {"chunks_per_sec": 90.0, "setup_ms": 5.0}},
        )
        assert run(old, new) == 0


class TestMissingMetricGate:
    def test_vanished_benchmark_fails(self, tmp_path, capsys):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(
            tmp_path, "new.json", {"other": {"chunks_per_sec": 100.0}}
        )
        assert run(old, new) == 1
        assert "vanished between snapshots" in capsys.readouterr().out

    def test_vanished_metric_key_fails(self, tmp_path, capsys):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(
            tmp_path, "new.json", {"replay": {"chunks_per_sec": 100.0}}
        )
        assert run(old, new) == 1
        assert "setup_ms" in capsys.readouterr().out

    def test_allow_missing_tolerates_both(self, tmp_path, capsys):
        old = snapshot(tmp_path, "old.json", BASE)
        new = snapshot(
            tmp_path, "new.json", {"other": {"chunks_per_sec": 100.0}}
        )
        assert run(old, new, "--allow-missing") == 0
        assert "tolerated" in capsys.readouterr().out

    def test_new_only_metric_is_informational(self, tmp_path):
        old = snapshot(tmp_path, "old.json", BASE)
        grown = {
            "replay": {**BASE["replay"], "batch_chunks_per_sec": 500.0},
            "fresh": {"solves_per_sec": 10.0},
        }
        new = snapshot(tmp_path, "new.json", grown)
        assert run(old, new) == 0

    def test_committed_baselines_still_compare_clean(self, capsys):
        """The stricter gate must not invalidate the committed baselines."""
        assert (
            run(REPO_ROOT / "BENCH_seed.json", REPO_ROOT / "BENCH_pr9.json")
            == 0
        )
        capsys.readouterr()
