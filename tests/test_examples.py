"""Smoke tests for the example scripts.

Each example is importable (catches bit-rot in their imports), and the
fastest one runs end to end.  The heavyweight examples are exercised by the
benchmark suite's equivalent experiments, so running them here would only
duplicate minutes of work.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_cleanly(path):
    module = _load(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    assert callable(module.main)


def test_quickstart_runs_end_to_end(capsys):
    module = _load(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "mean absolute error vs hidden GTBW" in out
    assert "Veritas" in out
