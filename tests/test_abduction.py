"""Integration tests for end-to-end Veritas abduction.

These exercise the headline capability: given only a session log (no
ground-truth bandwidth), the inferred GTBW should track the truth far
better than the observed-throughput Baseline whenever TCP effects bias the
observations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    VeritasAbduction,
    VeritasConfig,
    baseline_trace,
    constant_trace,
    paper_veritas_config,
    random_walk_trace,
)
from repro.video import short_video


class TestConfig:
    def test_defaults_match_paper(self):
        config = VeritasConfig()
        assert config.delta_s == 5.0
        assert config.epsilon_mbps == 0.5
        assert config.sigma_mbps == 0.5
        assert config.transition_kind == "tridiagonal"

    def test_rejects_unknown_transition(self):
        with pytest.raises(ValueError):
            VeritasConfig(transition_kind="magic")

    def test_rejects_unknown_emission(self):
        with pytest.raises(ValueError):
            VeritasConfig(emission_kind="magic")

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            VeritasConfig(delta_s=0.0)


class TestAbductionBasics:
    def test_solve_empty_log_raises(self, mpc_log):
        empty = mpc_log.truncated(0)
        veritas = VeritasAbduction(paper_veritas_config())
        with pytest.raises(ValueError):
            veritas.solve(empty)

    def test_posterior_shapes(self, solved_posterior, mpc_log):
        post = solved_posterior
        assert post.viterbi.states.shape == (mpc_log.n_chunks,)
        assert post.smoothing.gamma.shape[0] == mpc_log.n_chunks
        assert np.isfinite(post.log_likelihood)

    def test_map_capacities_on_grid(self, solved_posterior):
        caps = solved_posterior.map_capacities_mbps()
        offsets = caps / 0.5
        assert np.allclose(offsets, np.round(offsets))

    def test_posterior_mean_within_grid(self, solved_posterior):
        mean = solved_posterior.posterior_mean_capacities_mbps()
        assert np.all(mean >= 0.0)
        assert np.all(mean <= 10.0)

    def test_sampling_deterministic_with_seed(self, solved_posterior):
        a = solved_posterior.sample_trace(seed=3)
        b = solved_posterior.sample_trace(seed=3)
        assert np.array_equal(a.values, b.values)

    def test_sample_traces_count(self, solved_posterior):
        traces = solved_posterior.sample_traces(count=5, seed=1)
        assert len(traces) == 5

    def test_sample_traces_rejects_zero(self, solved_posterior):
        with pytest.raises(ValueError):
            solved_posterior.sample_traces(count=0)

    def test_trace_duration_extension(self, mpc_log):
        veritas = VeritasAbduction(paper_veritas_config())
        post = veritas.solve(mpc_log, trace_duration_s=2000.0)
        assert post.map_trace().end_time >= 2000.0

    def test_expected_capacity_after(self, solved_posterior):
        now = solved_posterior.expected_capacity_after(0)
        later = solved_posterior.expected_capacity_after(50)
        assert 0.0 <= now <= 10.0
        assert 0.0 <= later <= 10.0
        with pytest.raises(ValueError):
            solved_posterior.expected_capacity_after(-1)


class TestRecoveryAccuracy:
    def _run(self, trace, duration=240.0, seed=3):
        video = short_video(duration_s=duration, seed=seed)
        log = StreamingSession(
            video, MPCAlgorithm(), trace, SessionConfig()
        ).run()
        veritas = VeritasAbduction(paper_veritas_config())
        return log, veritas.solve(log)

    def test_constant_bandwidth_recovered(self):
        trace = constant_trace(4.0, 2000.0)
        log, post = self._run(trace)
        caps = post.map_capacities_mbps()
        # Skip the cold-start ramp; steady state should pin 4.0 well.
        steady = caps[20:]
        assert np.median(steady) == pytest.approx(4.0, abs=0.75)

    def test_map_beats_baseline_under_bias(self):
        """The core claim: on a biased session, Veritas MAP tracks GTBW
        better than the observed-throughput Baseline."""
        trace = random_walk_trace(
            7.0, 2000.0, seed=21, low=4.0, high=9.0, step_mbps=1.0, stay_prob=0.5
        )
        log, post = self._run(trace, duration=300.0)
        base = baseline_trace(log)
        grid_t = np.arange(5.0, log.end_times_s()[-1] - 5.0, 2.0)
        gt = trace.values_at(grid_t)
        mae_map = np.mean(np.abs(post.map_trace().values_at(grid_t) - gt))
        mae_base = np.mean(np.abs(base.values_at(grid_t) - gt))
        assert mae_map < mae_base

    def test_loglik_prefers_true_sigma_scale(self):
        """Wildly wrong sigma should not fit better than the default."""
        trace = constant_trace(4.0, 2000.0)
        video = short_video(duration_s=240.0, seed=3)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        good = VeritasAbduction(VeritasConfig(sigma_mbps=0.5)).solve(log)
        bad = VeritasAbduction(VeritasConfig(sigma_mbps=50.0)).solve(log)
        assert good.log_likelihood > bad.log_likelihood

    def test_naive_emission_underestimates_under_bias(self):
        """Dropping the TCP-state control (ablation) must hurt: the naive
        emission reads biased throughput at face value."""
        trace = constant_trace(8.0, 2000.0)
        video = short_video(duration_s=240.0, seed=3)
        log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        tcp_post = VeritasAbduction(VeritasConfig(emission_kind="tcp")).solve(log)
        naive_post = VeritasAbduction(VeritasConfig(emission_kind="naive")).solve(log)
        tcp_mean = tcp_post.map_capacities_mbps()[20:].mean()
        naive_mean = naive_post.map_capacities_mbps()[20:].mean()
        assert naive_mean < tcp_mean
        assert tcp_mean == pytest.approx(8.0, abs=1.2)

    def test_samples_bracket_map(self, solved_posterior):
        samples = solved_posterior.sample_traces(count=5, seed=0)
        grid_t = np.arange(10.0, 200.0, 5.0)
        map_vals = solved_posterior.map_trace().values_at(grid_t)
        lo = np.min([s.values_at(grid_t) for s in samples], axis=0)
        hi = np.max([s.values_at(grid_t) for s in samples], axis=0)
        # MAP should mostly lie within the sampled envelope.
        inside = np.mean((map_vals >= lo - 0.5) & (map_vals <= hi + 0.5))
        assert inside > 0.8
