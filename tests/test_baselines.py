"""Tests for the comparator schemes: Baseline trace, oracle, MLP, Fugu."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FuguPredictor,
    MLPRegressor,
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    baseline_trace,
    constant_trace,
    oracle_trace,
)
from repro.video import short_video


class TestBaselineTrace:
    def test_empty_log_rejected(self, mpc_log):
        with pytest.raises(ValueError):
            baseline_trace(mpc_log.truncated(0))

    def test_bad_grid_rejected(self, mpc_log):
        with pytest.raises(ValueError):
            baseline_trace(mpc_log, grid_s=0.0)

    def test_download_window_holds_observed_throughput(self, mpc_log):
        trace = baseline_trace(mpc_log, grid_s=0.25)
        record = mpc_log.records[10]
        mid = (record.start_time_s + record.end_time_s) / 2
        assert trace.value_at(mid) == pytest.approx(
            record.throughput_mbps, rel=0.02
        )

    def test_off_period_interpolates(self, mpc_log):
        trace = baseline_trace(mpc_log, grid_s=0.25)
        # Find an off period (gap between chunks) of at least one second.
        for prev, nxt in zip(mpc_log.records, mpc_log.records[1:]):
            gap = nxt.start_time_s - prev.end_time_s
            if gap > 1.0:
                mid = (prev.end_time_s + nxt.start_time_s) / 2
                lo = min(prev.throughput_mbps, nxt.throughput_mbps)
                hi = max(prev.throughput_mbps, nxt.throughput_mbps)
                assert lo - 0.6 <= trace.value_at(mid) <= hi + 0.6
                return
        pytest.skip("no off period longer than 1 s in the shared log")

    def test_duration_extension_holds_last(self, mpc_log):
        trace = baseline_trace(mpc_log, duration_s=5000.0)
        assert trace.end_time >= 5000.0
        last = mpc_log.records[-1].throughput_mbps
        assert trace.value_at(4999.0) == pytest.approx(last, rel=0.02)

    def test_underestimates_on_biased_session(self):
        """Small chunks + slow-start restarts => Baseline mean < GTBW."""
        video = short_video(duration_s=240.0, seed=5)
        gtbw = constant_trace(8.0, 2000.0)
        log = StreamingSession(video, MPCAlgorithm(), gtbw, SessionConfig()).run()
        base = baseline_trace(log)
        assert base.mean() < 8.0


class TestOracle:
    def test_returns_ground_truth(self, mpc_log, gentle_trace):
        trace = oracle_trace(mpc_log, gentle_trace)
        assert trace is gentle_trace

    def test_extends_when_needed(self, mpc_log, gentle_trace):
        trace = oracle_trace(mpc_log, gentle_trace, duration_s=10_000.0)
        assert trace.end_time >= 10_000.0
        assert trace.value_at(9_999.0) == gentle_trace.values[-1]


class TestMLP:
    def test_rejects_bad_architecture(self):
        with pytest.raises(ValueError):
            MLPRegressor([5])
        with pytest.raises(ValueError):
            MLPRegressor([5, 0, 1])

    def test_fit_validates_shapes(self):
        model = MLPRegressor([2, 4, 1], seed=0)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(4))

    def test_predict_before_fit_raises(self):
        model = MLPRegressor([2, 4, 1], seed=0)
        with pytest.raises(RuntimeError):
            model.predict(np.zeros(2))

    def test_overfits_tiny_dataset(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + 0.3
        model = MLPRegressor([3, 32, 32, 1], seed=1)
        losses = model.fit(x, y, epochs=200, batch_size=16, learning_rate=3e-3, seed=2)
        assert losses[-1] < 0.01
        pred = model.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05 * np.var(y)

    def test_losses_decrease(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(128, 2))
        y = np.sin(x[:, 0]) + x[:, 1]
        model = MLPRegressor([2, 16, 1], seed=3)
        losses = model.fit(x, y, epochs=50, seed=4)
        assert losses[-1] < losses[0]

    def test_gradients_match_finite_differences(self):
        """Backprop correctness: analytic gradient vs numeric."""
        rng = np.random.default_rng(5)
        model = MLPRegressor([3, 5, 1], seed=6)
        x = rng.normal(size=(7, 3))
        y = rng.normal(size=(7, 1))

        def loss():
            out, _ = model._forward(x)
            return float(np.mean((out - y) ** 2))

        out, acts = model._forward(x)
        grad_out = 2.0 * (out - y) / x.shape[0]
        grad_w, grad_b = model._backward(acts, grad_out)

        eps = 1e-6
        for layer in range(len(model.weights)):
            w = model.weights[layer]
            for idx in [(0, 0), (1, 2), (2, 4)]:
                if idx[0] >= w.shape[0] or idx[1] >= w.shape[1]:
                    continue
                original = w[idx]
                w[idx] = original + eps
                up = loss()
                w[idx] = original - eps
                down = loss()
                w[idx] = original
                numeric = (up - down) / (2 * eps)
                assert grad_w[layer][idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_predict_single_and_batch(self):
        model = MLPRegressor([2, 8, 1], seed=7)
        rng = np.random.default_rng(8)
        x = rng.normal(size=(32, 2))
        model.fit(x, x.sum(axis=1), epochs=10, seed=9)
        single = model.predict(x[0])
        batch = model.predict(x)
        assert np.isscalar(single) or np.ndim(single) == 0
        assert batch.shape == (32,)
        assert batch[0] == pytest.approx(single)


class TestFugu:
    def _logs(self, n=3):
        logs = []
        for i in range(n):
            video = short_video(duration_s=120.0, seed=i)
            trace = constant_trace(2.0 + 2.0 * i, 2000.0)
            logs.append(
                StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
            )
        return logs

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            FuguPredictor(history_length=0)

    def test_predict_before_train_raises(self):
        fugu = FuguPredictor()
        with pytest.raises(RuntimeError):
            fugu.predict_download_time(1000, [], [])

    def test_rejects_bad_candidate(self):
        fugu = FuguPredictor()
        fugu.train(self._logs(1), epochs=2)
        with pytest.raises(ValueError):
            fugu.predict_download_time(0, [], [])

    def test_train_and_predict_positive(self):
        fugu = FuguPredictor(seed=0)
        fugu.train(self._logs(), epochs=10)
        d = fugu.predict_download_time(500_000, [400_000] * 8, [1.0] * 8)
        assert d > 0

    def test_learns_size_monotonicity_in_distribution(self):
        """Within the training distribution, bigger chunks take longer."""
        fugu = FuguPredictor(seed=0)
        fugu.train(self._logs(), epochs=25)
        past_sizes = [500_000] * 8
        past_times = [1.3] * 8
        d_small = fugu.predict_download_time(100_000, past_sizes, past_times)
        d_big = fugu.predict_download_time(1_000_000, past_sizes, past_times)
        assert d_big > d_small

    def test_train_rejects_empty(self):
        fugu = FuguPredictor()
        with pytest.raises(ValueError):
            fugu.train([])
