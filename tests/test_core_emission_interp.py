"""Tests for the emission model and trace interpolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CapacityGrid,
    EmissionModel,
    interpolate_capacity_trace,
    naive_emission,
    window_gaps,
    window_index,
)
from repro.tcp import TCPStateSnapshot


def snap(gap=2.0):
    return TCPStateSnapshot(
        cwnd_segments=10,
        ssthresh_segments=1 << 20,
        srtt_s=0.08,
        min_rtt_s=0.08,
        rto_s=0.25,
        time_since_last_send_s=gap,
    )


@pytest.fixture
def grid():
    return CapacityGrid(0.5, 10.0)


class TestEmissionModel:
    def test_rejects_bad_sigma(self, grid):
        with pytest.raises(ValueError):
            EmissionModel(grid, sigma_mbps=0.0)

    def test_rejects_bad_outlier_mass(self, grid):
        with pytest.raises(ValueError):
            EmissionModel(grid, outlier_mass=1.0)

    def test_row_shape(self, grid):
        model = EmissionModel(grid)
        row = model.log_prob_row(3.0, snap(), 500_000)
        assert row.shape == (grid.n_states,)
        assert np.all(np.isfinite(row))

    def test_row_peaks_near_truth_for_large_chunks(self, grid):
        """Large chunks nearly saturate the link, so the argmax capacity
        should be close to the observed throughput."""
        model = EmissionModel(grid, outlier_mass=0.0)
        observed = 4.0
        row = model.log_prob_row(observed, snap(), 4_000_000)
        best = grid.value_of(int(np.argmax(row)))
        assert abs(best - observed) <= 1.0

    def test_small_chunk_plateau_is_one_sided(self, grid):
        """For tiny chunks, capacities above a threshold are equally likely
        — the paper's uncertainty phenomenon (§4.3)."""
        model = EmissionModel(grid, outlier_mass=0.0)
        row = model.log_prob_row(0.8, snap(), 25_000)
        top = row.max()
        plateau = grid.values_mbps[row > top - 0.1]
        assert plateau.max() == grid.max_mbps
        assert plateau.min() >= 0.5

    def test_outlier_mass_caps_penalty(self, grid):
        plain = EmissionModel(grid, outlier_mass=0.0)
        robust = EmissionModel(grid, outlier_mass=0.05)
        # An absurd observation: 9 Mbps for a chunk predicted ~1 Mbps.
        row_plain = plain.log_prob_row(9.0, snap(), 25_000)
        row_robust = robust.log_prob_row(9.0, snap(), 25_000)
        assert row_plain.min() < row_robust.min()
        assert row_robust.min() > -10.0

    def test_matrix_stacks_rows(self, grid):
        model = EmissionModel(grid)
        mat = model.log_prob_matrix(
            [2.0, 3.0], [snap(), snap()], [100_000, 200_000]
        )
        assert mat.shape == (2, grid.n_states)

    def test_matrix_validates_lengths(self, grid):
        model = EmissionModel(grid)
        with pytest.raises(ValueError):
            model.log_prob_matrix([1.0], [snap(), snap()], [100, 200])

    def test_matrix_rejects_empty(self, grid):
        model = EmissionModel(grid)
        with pytest.raises(ValueError):
            model.log_prob_matrix([], [], [])

    def test_negative_observation_rejected(self, grid):
        model = EmissionModel(grid)
        with pytest.raises(ValueError):
            model.log_prob_row(-1.0, snap(), 1000)

    def test_naive_emission_ignores_tcp(self, grid):
        vals = naive_emission(grid.values_mbps, snap(), 25_000)
        assert np.array_equal(vals, grid.values_mbps)

    def test_naive_vs_tcp_emission_differ(self, grid):
        tcp = EmissionModel(grid)
        naive = EmissionModel(grid, estimator=naive_emission)
        row_tcp = tcp.log_prob_row(1.0, snap(), 25_000)
        row_naive = naive.log_prob_row(1.0, snap(), 25_000)
        # Naive thinks capacity ~1 Mbps; TCP-aware knows a small chunk at
        # 1 Mbps observed is consistent with much higher capacity.
        assert int(np.argmax(row_naive)) == grid.index_of(1.0)
        assert int(np.argmax(row_tcp)) >= grid.index_of(1.0)


class TestWindows:
    def test_window_index(self):
        assert window_index(0.0, 5.0) == 0
        assert window_index(4.99, 5.0) == 0
        assert window_index(5.0, 5.0) == 1
        assert window_index(47.0, 5.0) == 9

    def test_window_index_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            window_index(1.0, 0.0)
        with pytest.raises(ValueError):
            window_index(-1.0, 5.0)

    def test_window_gaps_paper_figure4(self):
        """Fig. 4: chunks 2,3 share a window (gap 0); 4 to 5 spans 2."""
        starts = np.array([1.0, 6.0, 7.0, 16.0, 26.0])
        gaps = window_gaps(starts, 5.0)
        assert list(gaps) == [0, 1, 0, 2, 2]

    def test_window_gaps_rejects_unsorted(self):
        with pytest.raises(ValueError):
            window_gaps(np.array([5.0, 1.0]), 5.0)

    def test_window_gaps_rejects_empty(self):
        with pytest.raises(ValueError):
            window_gaps(np.array([]), 5.0)


class TestInterpolation:
    def test_constant_capacity(self, grid):
        trace = interpolate_capacity_trace(
            np.array([1.0, 7.0, 13.0]), np.array([4.0, 4.0, 4.0]), 5.0, grid
        )
        assert np.all(trace.values == 4.0)

    def test_linear_between_windows(self, grid):
        # Chunk at window 0 with 2 Mbps, chunk at window 4 with 4 Mbps:
        # intermediate windows interpolate.
        trace = interpolate_capacity_trace(
            np.array([1.0, 21.0]), np.array([2.0, 4.0]), 5.0, grid
        )
        assert trace.value_at(2.5) == 2.0
        assert trace.value_at(22.5) == 4.0
        assert trace.value_at(12.5) == pytest.approx(3.0)

    def test_values_quantized_to_grid(self, grid):
        trace = interpolate_capacity_trace(
            np.array([1.0, 26.0]), np.array([1.0, 4.0]), 5.0, grid
        )
        offsets = trace.values / grid.epsilon_mbps
        assert np.allclose(offsets, np.round(offsets))

    def test_duration_extension(self, grid):
        trace = interpolate_capacity_trace(
            np.array([1.0]), np.array([3.0]), 5.0, grid, duration_s=60.0
        )
        assert trace.end_time >= 60.0
        assert trace.value_at(59.0) == 3.0

    def test_chunks_in_same_window_averaged(self, grid):
        trace = interpolate_capacity_trace(
            np.array([1.0, 2.0]), np.array([2.0, 4.0]), 5.0, grid
        )
        assert trace.value_at(2.5) == pytest.approx(3.0)

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError):
            interpolate_capacity_trace(
                np.array([1.0, 2.0]), np.array([1.0]), 5.0, grid
            )
        with pytest.raises(ValueError):
            interpolate_capacity_trace(
                np.array([2.0, 1.0]), np.array([1.0, 1.0]), 5.0, grid
            )
