"""Tests for the compiled replay kernel tier (PR 6).

``repro.tcp._compiled`` keeps three interchangeable implementations of the
whole-batch chunk-download kernel:

* the pure-Python mirror (always importable — the parity oracle),
* a numba ``njit`` build of the mirror (when numba is installed),
* a cc + cffi build of a line-for-line C transcription (when a C
  compiler and cffi are present, as in the offline CI image).

This suite pins the active backend to the Python mirror bit-for-bit,
exercises the feature-detection/fallback contract
(``kernel="compiled"`` degrades to the scratch tier when no backend is
buildable), and runs whole sessions through the compiled tier against
serial replay.

Tolerance note: both compiled backends execute the same correctly-rounded
IEEE-754 float64 operations as the mirror in the same order (the cc build
disables FMA contraction and fast-math), so on the platforms we test
results are bit-identical.  The documented cross-platform tolerance for
the compiled tier is ``rtol=1e-12``; the dedicated tolerance test below
asserts it explicitly while the lockstep tests pin exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchStreamingSession,
    SessionConfig,
    StreamingSession,
    Video,
    default_ladder,
)
from repro.abr import BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm, _decisions
from repro.abr import mpc as mpc_module
from repro.net.trace import PiecewiseConstantTrace, TraceBatch
from repro.player import _fused
from repro.player.batch_session import LaneGroup
from repro.tcp import _compiled
from repro.tcp.connection import BatchTCPConnection
from repro.util import compiled as util_compiled

from test_batch_replay import (  # noqa: F401
    REPLAY_TIERS,
    assert_logs_identical,
    lane_traces,
    video,
)


def make_problem(seed: int, n_lanes: int = 13, n_intervals: int = 40):
    """A random lane batch plus download state for the raw kernel call."""
    rng = np.random.default_rng(seed)
    bounds = np.concatenate(([0.0], np.cumsum(rng.uniform(0.5, 3.0, n_intervals))))
    values2d = rng.uniform(0.0, 8.0, (n_lanes, n_intervals))
    values2d[rng.random((n_lanes, n_intervals)) < 0.1] = 0.0
    values2d[:, -1] = np.maximum(values2d[:, -1], 0.5)  # transfers terminate
    widths = np.diff(bounds)
    rates2d = values2d * 1_000_000 / 8
    cum2d = np.concatenate(
        [np.zeros((n_lanes, 1)), np.cumsum(rates2d * widths, axis=1)], axis=1
    )
    cwnd = np.full(n_lanes, 10, dtype=np.int64)
    cwnd[n_lanes // 2] = 500  # one lane deep into a grown window
    ssthresh = np.full(n_lanes, 100, dtype=np.int64)
    ssthresh[n_lanes // 2] = 4
    last_send = rng.uniform(0.0, 5.0, n_lanes)
    sizes = 10 ** rng.uniform(4.0, 6.8, n_lanes)
    starts = last_send + rng.uniform(0.0, 1.0, n_lanes)  # idle gaps: restarts
    return bounds, values2d, rates2d, cum2d, cwnd, ssthresh, last_send, sizes, starts


def run_kernel(problem, force_python: bool, monkeypatch):
    bounds, values2d, rates2d, cum2d, cwnd, ssthresh, last_send, sizes, starts = (
        problem
    )
    monkeypatch.setattr(_compiled, "FORCE_PYTHON", force_python)
    n = sizes.shape[0]
    cwnd, ssthresh, last_send = cwnd.copy(), ssthresh.copy(), last_send.copy()
    ends, idle = np.empty(n), np.empty(n)
    cwnd_pre = np.empty(n, dtype=np.int64)
    ssthresh_pre = np.empty(n, dtype=np.int64)
    status = _compiled.download_chunk(
        bounds, values2d, rates2d, cum2d, sizes, starts, 0.08, 0.2,
        cwnd, ssthresh, last_send, ends, idle, cwnd_pre, ssthresh_pre,
    )
    return status, cwnd, ssthresh, ends, idle, cwnd_pre, ssthresh_pre


class TestBackendDispatch:
    def test_backend_is_known(self):
        assert _compiled.backend() in ("python", "numba", "cc")

    def test_available_tracks_backend(self):
        # available() must agree with the dispatcher: a non-Python backend
        # means the tier is servable, FORCE_PYTHON means it always is.
        if _compiled.backend() != "python":
            assert _compiled.available()

    def test_force_python_makes_tier_available(self, monkeypatch):
        monkeypatch.setattr(_compiled, "FORCE_PYTHON", True)
        assert _compiled.available()
        assert _compiled.backend() == "python"

    def test_unavailable_compiled_falls_back_to_scratch(self, monkeypatch):
        from repro.tcp import connection

        monkeypatch.setattr(_compiled, "available", lambda: False)
        monkeypatch.setattr(connection, "_COMPILED_FALLBACK_WARNED", False)
        batch = TraceBatch(lane_traces(3))
        with pytest.warns(RuntimeWarning, match="falling back"):
            conn = BatchTCPConnection(batch, kernel="compiled")
        assert conn.kernel == "compiled"  # the request is remembered...
        assert conn._tier == "scratch"  # ...but the scratch tier serves it

    def test_cc_build_failure_is_graceful(self, monkeypatch, tmp_path):
        """An unusable cache dir must make the cc backend report
        unavailable instead of raising at construction."""
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")  # makedirs fails even as root
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(blocked / "cache"))
        fresh = util_compiled.CcLibrary(
            "_replay", _compiled._CDEF, _compiled._C_SOURCE
        )
        monkeypatch.setattr(_compiled, "_CC_LIB", fresh)
        assert _compiled._cc_kernel() is None


class TestRawKernelParity:
    @pytest.mark.skipif(
        _compiled.backend() == "python",
        reason="no compiled backend on this machine",
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_backend_bit_identical_to_mirror(self, seed, monkeypatch):
        problem = make_problem(seed)
        mirror = run_kernel(problem, True, monkeypatch)
        native = run_kernel(problem, False, monkeypatch)
        assert mirror[0] == native[0] == 0
        for got, want in zip(native[1:], mirror[1:]):
            assert np.array_equal(got, want)

    def test_zero_trailing_bandwidth_status(self, monkeypatch):
        problem = make_problem(4)
        bounds, values2d = problem[0], problem[1].copy()
        values2d[2, :] = 0.0  # one dead lane
        widths = np.diff(bounds)
        rates2d = values2d * 1_000_000 / 8
        cum2d = np.concatenate(
            [np.zeros((values2d.shape[0], 1)), np.cumsum(rates2d * widths, axis=1)],
            axis=1,
        )
        sizes = problem[7].copy()
        sizes[2] = 1e12
        doomed = (bounds, values2d, rates2d, cum2d, *problem[4:7], sizes, problem[8])
        assert run_kernel(doomed, True, monkeypatch)[0] == 1
        if _compiled.backend() != "python":
            assert run_kernel(doomed, False, monkeypatch)[0] == 1

    def test_batch_connection_raises_on_dead_lane(self, video):  # noqa: F811
        dead = PiecewiseConstantTrace.from_uniform([2.0, 1.0, 0.0], 5.0)
        conn = BatchTCPConnection(TraceBatch([dead, dead]), kernel="compiled")
        with pytest.raises(RuntimeError, match="trailing bandwidth"):
            conn.download_batch(np.array([1e9, 1e9]), np.array([0.0, 0.0]))


class TestCompiledSessionParity:
    @pytest.mark.parametrize("abr_factory", [BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm])
    def test_sessions_bit_identical_to_serial(self, video, abr_factory):  # noqa: F811
        traces = lane_traces(6, seed=21)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            video, abr_factory, traces, config, kernel="compiled"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, abr_factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_force_python_sessions_bit_identical(self, video, monkeypatch):  # noqa: F811
        """The pure-Python mirror must satisfy the same session contract —
        this keeps the compiled code path testable with no toolchain."""
        monkeypatch.setattr(_compiled, "FORCE_PYTHON", True)
        traces = lane_traces(5, seed=22)
        config = SessionConfig(buffer_capacity_s=6.0)
        batch_log = BatchStreamingSession(
            video, BOLAAlgorithm, traces, config, kernel="compiled"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BOLAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_documented_tolerance(self, video):  # noqa: F811
        """The compiled tier's cross-platform guarantee is rtol=1e-12 on
        every logged float column (bit-exact where we can test)."""
        traces = lane_traces(4, seed=23)
        config = SessionConfig(buffer_capacity_s=5.0)
        compiled_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel="compiled"
        ).run()
        scratch_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel="scratch"
        ).run()
        np.testing.assert_allclose(
            compiled_log.end_times_s, scratch_log.end_times_s, rtol=1e-12, atol=0.0
        )
        np.testing.assert_allclose(
            compiled_log.rebuffer_s, scratch_log.rebuffer_s, rtol=1e-12, atol=0.0
        )
        assert np.array_equal(compiled_log.qualities, scratch_log.qualities)


# ----------------------------------------------------------------------
# Compiled ABR decision kernels (PR 8).
# ----------------------------------------------------------------------


class TestDecisionKernelDispatch:
    def test_backends_known(self):
        assert _decisions.backend() in ("python", "numba", "cc")
        assert _fused.backend() in ("python", "numba", "cc")

    def test_force_python_disables_kernels(self, monkeypatch):
        """The mirror is a per-lane scalar loop, so FORCE_PYTHON keeps the
        vectorised NumPy deciders in production — but the fused session
        tier stays available (its mirror is still a valid backend)."""
        monkeypatch.setattr(_decisions, "FORCE_PYTHON", True)
        monkeypatch.setattr(_fused, "FORCE_PYTHON", True)
        assert not _decisions.use_kernel()
        assert _decisions.backend() == "python"
        assert _fused.available()
        assert _fused.backend() == "python"

    def test_use_kernel_tracks_backend(self):
        if _decisions.backend() != "python":
            assert _decisions.use_kernel()
        else:
            assert not _decisions.use_kernel()


class TestDecisionKernelParity:
    """Raw mirror-vs-native parity for the decision kernels.

    The session suites pin the kernels against serial replay end to end;
    these tests pin the native backends against the Python mirror on the
    bare arrays, including the in-place predictor ring updates.
    """

    pytestmark = pytest.mark.skipif(
        _decisions.backend() == "python",
        reason="no compiled decision backend on this machine",
    )

    def test_bba_bit_identical(self, video, monkeypatch):  # noqa: F811
        abr = BBAAlgorithm()
        reservoir, upper, lowest, highest, r_min, r_max, rates = (
            abr.decision_kernel_plan(video, 20.0)
        )
        rng = np.random.default_rng(0)
        buffers = np.concatenate(
            [rng.uniform(0.0, 25.0, 64), [0.0, reservoir, upper, 25.0]]
        )
        got = np.empty(buffers.shape[0], dtype=np.int64)
        want = np.empty_like(got)
        _decisions.bba_decide(
            buffers, reservoir, upper, lowest, highest, r_min, r_max, rates, got
        )
        monkeypatch.setattr(_decisions, "FORCE_PYTHON", True)
        _decisions.bba_decide(
            buffers, reservoir, upper, lowest, highest, r_min, r_max, rates, want
        )
        assert np.array_equal(got, want)

    def test_bola_bit_identical(self, video, monkeypatch):  # noqa: F811
        abr = BOLAAlgorithm()
        weights = abr.decision_kernel_weights(video, 12.0)
        rng = np.random.default_rng(1)
        sizes = np.ascontiguousarray(video.sizes_for_chunk(3))
        buffers = rng.uniform(0.0, 12.0, 48)
        got = np.empty(48, dtype=np.int64)
        want = np.empty_like(got)
        _decisions.bola_decide(buffers, weights, sizes, got)
        monkeypatch.setattr(_decisions, "FORCE_PYTHON", True)
        _decisions.bola_decide(buffers, weights, sizes, want)
        assert np.array_equal(got, want)

    def test_mpc_observe_predict_bit_identical(self, monkeypatch):
        """Predictions AND the in-place ring mutations (errs, last_pred)
        must match the mirror at every step, including post-stall
        observations (tiny throughputs → large relative errors)."""
        window, error_window, cold_start = 5, 5, 1.0
        rng = np.random.default_rng(2)
        n_lanes, n_steps = 9, 12
        obs = rng.uniform(0.05, 20.0, (n_steps, n_lanes))
        obs[:, 0] = 1e-3  # starved lane: stall-like observations
        states = {}
        for force in (False, True):
            hist = np.zeros((n_lanes, window))
            errs = np.zeros((n_lanes, error_window))
            last_pred = np.full(n_lanes, -1.0)
            preds = np.empty((n_steps + 1, n_lanes))
            monkeypatch.setattr(_decisions, "FORCE_PYTHON", force)
            for n_obs in range(n_steps + 1):
                if n_obs > 0:
                    hist[:, (n_obs - 1) % window] = obs[n_obs - 1]
                _decisions.mpc_observe_predict(
                    hist, errs, last_pred, n_obs, window, error_window,
                    cold_start, preds[n_obs],
                )
            states[force] = (preds, errs, last_pred)
        for got, want in zip(states[False], states[True]):
            assert np.array_equal(got, want)

    def test_mpc_decide_bit_identical(self, video, monkeypatch):  # noqa: F811
        """The horizon search agrees with the mirror on every chunk —
        including the end-of-video rows where the horizon truncates."""
        pack = mpc_module._kernel_pack(video, 5)
        assert pack is not None
        meta, seq_flat, dbsum_flat, switch_flat, size_flat, db_flat = pack
        n_chunks = meta.shape[0]
        n_qualities = video.n_qualities
        rng = np.random.default_rng(3)
        k = 16
        for n in [0, 1, n_chunks - 5, n_chunks - 2, n_chunks - 1]:
            h, n_seq, seq_off, row_off = (int(x) for x in meta[n])
            buffers = rng.uniform(0.0, 10.0, k)
            pred = rng.uniform(1e-4, 30.0, k)
            last_q = rng.integers(-1, n_qualities, k).astype(np.int64)
            seq = seq_flat[seq_off : seq_off + n_seq * h]
            dbsum_row = dbsum_flat[row_off : row_off + n_seq]
            switch_row = switch_flat[row_off : row_off + n_seq]
            got = np.empty(k, dtype=np.int64)
            want = np.empty_like(got)
            monkeypatch.setattr(_decisions, "FORCE_PYTHON", False)
            _decisions.mpc_decide(
                n, h, n_seq, seq, size_flat, db_flat, n_qualities, dbsum_row,
                switch_row, buffers, pred, last_q, 8.0,
                video.chunk_duration_s, 100.0, 2.0, got,
            )
            monkeypatch.setattr(_decisions, "FORCE_PYTHON", True)
            _decisions.mpc_decide(
                n, h, n_seq, seq, size_flat, db_flat, n_qualities, dbsum_row,
                switch_row, buffers, pred, last_q, 8.0,
                video.chunk_duration_s, 100.0, 2.0, want,
            )
            assert np.array_equal(got, want)


def tie_video(n_chunks: int = 12) -> Video:
    """Every quality of every chunk has identical size and SSIM, so with
    zero penalties every MPC sequence scores the same QoE — the argmax
    must break the tie toward the first maximum on every backend."""
    ladder = default_ladder()
    q = len(ladder)
    sizes = np.full((n_chunks, q), 250_000.0)
    ssim = np.full((n_chunks, q), 0.97)
    return Video(ladder, 2.0, sizes, ssim)


class TestMPCKernelEdgeCases:
    """Satellite 3: MPC horizon-search seams on every kernel tier."""

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_end_of_video_truncation(self, tier):
        """A video shorter than the horizon truncates the sequence table
        from chunk 0; longer videos truncate over the last H-1 chunks."""
        for duration in (6.0, 20.0):  # 3 chunks (< horizon) and 10 chunks
            short = Video.generate(default_ladder(), duration_s=duration, seed=11)
            factory = lambda: MPCAlgorithm(horizon=5)  # noqa: E731
            traces = lane_traces(4, seed=41)
            config = SessionConfig(buffer_capacity_s=8.0)
            batch_log = BatchStreamingSession(
                short, factory, traces, config, kernel=tier
            ).run()
            for k, trace in enumerate(traces):
                serial = StreamingSession(short, factory(), trace, config).run()
                assert_logs_identical(serial, batch_log.lane(k))

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_k1_single_lane_batch(self, video, tier):  # noqa: F811
        traces = lane_traces(1, seed=42)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(
            video, MPCAlgorithm, traces, config, kernel=tier
        ).run()
        serial = StreamingSession(video, MPCAlgorithm(), traces[0], config).run()
        assert batch_log.n_lanes == 1
        assert_logs_identical(serial, batch_log.lane(0))

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_tied_qoe_argmax(self, tier):
        """All-equal QoE tables: every sequence ties, so the chosen
        quality is decided purely by the first-maximum argmax rule —
        any backend scanning in a different order diverges loudly."""
        tie = tie_video()
        factory = lambda: MPCAlgorithm(  # noqa: E731
            horizon=4, rebuffer_penalty=0.0, switch_penalty=0.0
        )
        traces = lane_traces(3, seed=43)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(
            tie, factory, traces, config, kernel=tier
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(tie, factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_predictor_error_state_after_stall(self, tier):
        """Starved lanes stall repeatedly; the post-stall decisions depend
        on the predictor's error ring (large relative errors shrink the
        robust prediction), so parity here pins that in-kernel state."""
        stall_video = Video.generate(default_ladder(), duration_s=40.0, seed=12)
        # Every lane starved: well below the lowest ladder bitrate.
        rng = np.random.default_rng(44)
        traces = [
            PiecewiseConstantTrace.from_uniform(rng.uniform(0.02, 0.15, 30), 5.0)
            for _ in range(3)
        ]
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            stall_video, MPCAlgorithm, traces, config, kernel=tier
        ).run()
        assert float(np.max(batch_log.rebuffer_s)) > 0.0  # stalls happened
        for k, trace in enumerate(traces):
            serial = StreamingSession(
                stall_video, MPCAlgorithm(), trace, config
            ).run()
            assert_logs_identical(serial, batch_log.lane(k))


# ----------------------------------------------------------------------
# Fused session tier (PR 8).
# ----------------------------------------------------------------------


class TestFusedTier:
    def test_fused_multi_partition_bit_identical(self, video):  # noqa: F811
        """BBA + BOLA + MPC partitions with different buffer capacities in
        one fused kernel call, against per-lane serial replay."""
        traces = lane_traces(9, seed=51)
        groups = [
            LaneGroup(BBAAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[:3]),
            LaneGroup(BOLAAlgorithm, SessionConfig(buffer_capacity_s=8.0), traces[3:6]),
            LaneGroup(MPCAlgorithm, SessionConfig(buffer_capacity_s=15.0), traces[6:]),
        ]
        batch_log = BatchStreamingSession.fused(video, groups, kernel="fused").run()
        factories = [BBAAlgorithm] * 3 + [BOLAAlgorithm] * 3 + [MPCAlgorithm] * 3
        capacities = [15.0] * 3 + [8.0] * 3 + [15.0] * 3
        for k, trace in enumerate(traces):
            serial = StreamingSession(
                video,
                factories[k](),
                trace,
                SessionConfig(buffer_capacity_s=capacities[k]),
            ).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_request_overhead_bit_identical(self, video):  # noqa: F811
        traces = lane_traces(4, seed=52)
        config = SessionConfig(buffer_capacity_s=6.0, request_overhead_s=0.05)
        batch_log = BatchStreamingSession(
            video, BOLAAlgorithm, traces, config, kernel="fused"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BOLAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_force_python_sessions_bit_identical(self, video, monkeypatch):  # noqa: F811
        """The fused tier's pure-Python mirror satisfies the same session
        contract — the whole fused path stays testable with no
        toolchain (and this is what the tier serves when only the
        session kernel's backend is missing)."""
        monkeypatch.setattr(_fused, "FORCE_PYTHON", True)
        traces = lane_traces(5, seed=53)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(
            video, MPCAlgorithm, traces, config, kernel="fused"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, MPCAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_unavailable_fused_falls_back(self, video, monkeypatch):  # noqa: F811
        from repro.tcp import connection

        monkeypatch.setattr(_fused, "available", lambda: False)
        monkeypatch.setattr(connection, "_FUSED_FALLBACK_WARNED", False)
        batch = TraceBatch(lane_traces(3))
        with pytest.warns(RuntimeWarning, match="falling back"):
            conn = BatchTCPConnection(batch, kernel="fused")
        assert conn.kernel == "fused"  # the request is remembered...
        expected = "compiled" if _compiled.available() else "scratch"
        assert conn._tier == expected  # ...served by the next tier down

    def test_fused_scalar_fallback_abr_uses_chunk_loop(self, video):  # noqa: F811
        """An ABR outside the fused kernel's reach (scalar decisions) on
        kernel="fused" silently takes the per-chunk loop on the same
        connection — identical results, no error."""

        class PinnedBBA(BBAAlgorithm):
            name = "pinned-bba"

            def choose_quality(self, context):
                return min(1, context.video.n_qualities - 1)

        traces = lane_traces(3, seed=54)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            video, PinnedBBA, traces, config, kernel="fused"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, PinnedBBA(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_non_robust_mpc_uses_chunk_loop(self, video):  # noqa: F811
        """Plain (non-robust) MPC has no kernel pack, so the fused tier
        must fall back to the per-chunk loop and still match serial."""
        factory = lambda: MPCAlgorithm(robust=False)  # noqa: E731
        traces = lane_traces(3, seed=55)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(
            video, factory, traces, config, kernel="fused"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_mixed_mpc_horizons_use_chunk_loop(self, video):  # noqa: F811
        """Two MPC partitions with different horizons cannot share one
        kernel pack; the fused plan rejects the mix and the per-chunk
        loop serves it bit-identically."""
        traces = lane_traces(4, seed=56)
        groups = [
            LaneGroup(
                lambda: MPCAlgorithm(horizon=4),
                SessionConfig(buffer_capacity_s=8.0),
                traces[:2],
            ),
            LaneGroup(
                lambda: MPCAlgorithm(horizon=5),
                SessionConfig(buffer_capacity_s=8.0),
                traces[2:],
            ),
        ]
        batch_log = BatchStreamingSession.fused(video, groups, kernel="fused").run()
        horizons = [4, 4, 5, 5]
        for k, trace in enumerate(traces):
            serial = StreamingSession(
                video,
                MPCAlgorithm(horizon=horizons[k]),
                trace,
                SessionConfig(buffer_capacity_s=8.0),
            ).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_zero_capacity_and_stalls(self, video):  # noqa: F811
        """The default lane mix (starved / fast / zero-capacity lanes)
        through the fused kernel: stalls, overflow sleeps and mid-trace
        dead intervals all inside the compiled loop."""
        traces = lane_traces(8, seed=57)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel="fused"
        ).run()
        assert float(np.max(batch_log.rebuffer_s)) > 0.0
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BBAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_dead_lane_raises(self):
        dead = PiecewiseConstantTrace.from_uniform([0.4, 0.2, 0.0], 5.0)
        tiny = Video.generate(default_ladder(), duration_s=120.0, seed=13)
        with pytest.raises(RuntimeError, match="trailing bandwidth"):
            BatchStreamingSession(
                tiny,
                BBAAlgorithm,
                [dead, dead],
                SessionConfig(buffer_capacity_s=5.0),
                kernel="fused",
            ).run()
