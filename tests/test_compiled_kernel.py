"""Tests for the compiled replay kernel tier (PR 6).

``repro.tcp._compiled`` keeps three interchangeable implementations of the
whole-batch chunk-download kernel:

* the pure-Python mirror (always importable — the parity oracle),
* a numba ``njit`` build of the mirror (when numba is installed),
* a cc + cffi build of a line-for-line C transcription (when a C
  compiler and cffi are present, as in the offline CI image).

This suite pins the active backend to the Python mirror bit-for-bit,
exercises the feature-detection/fallback contract
(``kernel="compiled"`` degrades to the scratch tier when no backend is
buildable), and runs whole sessions through the compiled tier against
serial replay.

Tolerance note: both compiled backends execute the same correctly-rounded
IEEE-754 float64 operations as the mirror in the same order (the cc build
disables FMA contraction and fast-math), so on the platforms we test
results are bit-identical.  The documented cross-platform tolerance for
the compiled tier is ``rtol=1e-12``; the dedicated tolerance test below
asserts it explicitly while the lockstep tests pin exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchStreamingSession,
    SessionConfig,
    StreamingSession,
)
from repro.abr import BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm
from repro.net.trace import PiecewiseConstantTrace, TraceBatch
from repro.tcp import _compiled
from repro.tcp.connection import BatchTCPConnection

from test_batch_replay import assert_logs_identical, lane_traces, video  # noqa: F401


def make_problem(seed: int, n_lanes: int = 13, n_intervals: int = 40):
    """A random lane batch plus download state for the raw kernel call."""
    rng = np.random.default_rng(seed)
    bounds = np.concatenate(([0.0], np.cumsum(rng.uniform(0.5, 3.0, n_intervals))))
    values2d = rng.uniform(0.0, 8.0, (n_lanes, n_intervals))
    values2d[rng.random((n_lanes, n_intervals)) < 0.1] = 0.0
    values2d[:, -1] = np.maximum(values2d[:, -1], 0.5)  # transfers terminate
    widths = np.diff(bounds)
    rates2d = values2d * 1_000_000 / 8
    cum2d = np.concatenate(
        [np.zeros((n_lanes, 1)), np.cumsum(rates2d * widths, axis=1)], axis=1
    )
    cwnd = np.full(n_lanes, 10, dtype=np.int64)
    cwnd[n_lanes // 2] = 500  # one lane deep into a grown window
    ssthresh = np.full(n_lanes, 100, dtype=np.int64)
    ssthresh[n_lanes // 2] = 4
    last_send = rng.uniform(0.0, 5.0, n_lanes)
    sizes = 10 ** rng.uniform(4.0, 6.8, n_lanes)
    starts = last_send + rng.uniform(0.0, 1.0, n_lanes)  # idle gaps: restarts
    return bounds, values2d, rates2d, cum2d, cwnd, ssthresh, last_send, sizes, starts


def run_kernel(problem, force_python: bool, monkeypatch):
    bounds, values2d, rates2d, cum2d, cwnd, ssthresh, last_send, sizes, starts = (
        problem
    )
    monkeypatch.setattr(_compiled, "FORCE_PYTHON", force_python)
    n = sizes.shape[0]
    cwnd, ssthresh, last_send = cwnd.copy(), ssthresh.copy(), last_send.copy()
    ends, idle = np.empty(n), np.empty(n)
    cwnd_pre = np.empty(n, dtype=np.int64)
    ssthresh_pre = np.empty(n, dtype=np.int64)
    status = _compiled.download_chunk(
        bounds, values2d, rates2d, cum2d, sizes, starts, 0.08, 0.2,
        cwnd, ssthresh, last_send, ends, idle, cwnd_pre, ssthresh_pre,
    )
    return status, cwnd, ssthresh, ends, idle, cwnd_pre, ssthresh_pre


class TestBackendDispatch:
    def test_backend_is_known(self):
        assert _compiled.backend() in ("python", "numba", "cc")

    def test_available_tracks_backend(self):
        # available() must agree with the dispatcher: a non-Python backend
        # means the tier is servable, FORCE_PYTHON means it always is.
        if _compiled.backend() != "python":
            assert _compiled.available()

    def test_force_python_makes_tier_available(self, monkeypatch):
        monkeypatch.setattr(_compiled, "FORCE_PYTHON", True)
        assert _compiled.available()
        assert _compiled.backend() == "python"

    def test_unavailable_compiled_falls_back_to_scratch(self, monkeypatch):
        from repro.tcp import connection

        monkeypatch.setattr(_compiled, "available", lambda: False)
        monkeypatch.setattr(connection, "_COMPILED_FALLBACK_WARNED", False)
        batch = TraceBatch(lane_traces(3))
        with pytest.warns(RuntimeWarning, match="falling back"):
            conn = BatchTCPConnection(batch, kernel="compiled")
        assert conn.kernel == "compiled"  # the request is remembered...
        assert conn._tier == "scratch"  # ...but the scratch tier serves it

    def test_cc_build_failure_is_graceful(self, monkeypatch, tmp_path):
        """An unusable cache dir must make the cc backend report
        unavailable instead of raising at construction."""
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")  # makedirs fails even as root
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(blocked / "cache"))
        monkeypatch.setattr(
            _compiled, "_cc_state", {"tried": False, "lib": None, "ffi": None}
        )
        assert _compiled._cc_kernel() is None


class TestRawKernelParity:
    @pytest.mark.skipif(
        _compiled.backend() == "python",
        reason="no compiled backend on this machine",
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_backend_bit_identical_to_mirror(self, seed, monkeypatch):
        problem = make_problem(seed)
        mirror = run_kernel(problem, True, monkeypatch)
        native = run_kernel(problem, False, monkeypatch)
        assert mirror[0] == native[0] == 0
        for got, want in zip(native[1:], mirror[1:]):
            assert np.array_equal(got, want)

    def test_zero_trailing_bandwidth_status(self, monkeypatch):
        problem = make_problem(4)
        bounds, values2d = problem[0], problem[1].copy()
        values2d[2, :] = 0.0  # one dead lane
        widths = np.diff(bounds)
        rates2d = values2d * 1_000_000 / 8
        cum2d = np.concatenate(
            [np.zeros((values2d.shape[0], 1)), np.cumsum(rates2d * widths, axis=1)],
            axis=1,
        )
        sizes = problem[7].copy()
        sizes[2] = 1e12
        doomed = (bounds, values2d, rates2d, cum2d, *problem[4:7], sizes, problem[8])
        assert run_kernel(doomed, True, monkeypatch)[0] == 1
        if _compiled.backend() != "python":
            assert run_kernel(doomed, False, monkeypatch)[0] == 1

    def test_batch_connection_raises_on_dead_lane(self, video):  # noqa: F811
        dead = PiecewiseConstantTrace.from_uniform([2.0, 1.0, 0.0], 5.0)
        conn = BatchTCPConnection(TraceBatch([dead, dead]), kernel="compiled")
        with pytest.raises(RuntimeError, match="trailing bandwidth"):
            conn.download_batch(np.array([1e9, 1e9]), np.array([0.0, 0.0]))


class TestCompiledSessionParity:
    @pytest.mark.parametrize("abr_factory", [BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm])
    def test_sessions_bit_identical_to_serial(self, video, abr_factory):  # noqa: F811
        traces = lane_traces(6, seed=21)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            video, abr_factory, traces, config, kernel="compiled"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, abr_factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_force_python_sessions_bit_identical(self, video, monkeypatch):  # noqa: F811
        """The pure-Python mirror must satisfy the same session contract —
        this keeps the compiled code path testable with no toolchain."""
        monkeypatch.setattr(_compiled, "FORCE_PYTHON", True)
        traces = lane_traces(5, seed=22)
        config = SessionConfig(buffer_capacity_s=6.0)
        batch_log = BatchStreamingSession(
            video, BOLAAlgorithm, traces, config, kernel="compiled"
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BOLAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_documented_tolerance(self, video):  # noqa: F811
        """The compiled tier's cross-platform guarantee is rtol=1e-12 on
        every logged float column (bit-exact where we can test)."""
        traces = lane_traces(4, seed=23)
        config = SessionConfig(buffer_capacity_s=5.0)
        compiled_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel="compiled"
        ).run()
        scratch_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel="scratch"
        ).run()
        np.testing.assert_allclose(
            compiled_log.end_times_s, scratch_log.end_times_s, rtol=1e-12, atol=0.0
        )
        np.testing.assert_allclose(
            compiled_log.rebuffer_s, scratch_log.rebuffer_s, rtol=1e-12, atol=0.0
        )
        assert np.array_equal(compiled_log.qualities, scratch_log.qualities)
