"""Tests for the flow-level TCP download simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import PiecewiseConstantTrace, constant_trace
from repro.tcp import TCPConnection
from repro.tcp.estimator import estimate_throughput
from repro.util import transfer_bytes


class TestBasics:
    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            TCPConnection(constant_trace(5.0, 10.0), rtt_s=0.0)

    def test_rejects_nonpositive_size(self):
        conn = TCPConnection(constant_trace(5.0, 10.0))
        with pytest.raises(ValueError):
            conn.download(0, 1.0)

    def test_rejects_time_travel(self):
        conn = TCPConnection(constant_trace(5.0, 100.0))
        conn.download(100_000, 1.0)
        with pytest.raises(ValueError):
            conn.download(100_000, 0.5)

    def test_download_advances_state(self):
        conn = TCPConnection(constant_trace(5.0, 100.0))
        before = conn.state.cwnd_segments
        result = conn.download(500_000, 1.0)
        assert result.end_time_s > result.start_time_s
        assert conn.state.last_send_time_s == result.end_time_s
        assert conn.state.cwnd_segments >= before

    def test_reset_restores_initial_window(self):
        conn = TCPConnection(constant_trace(5.0, 100.0))
        conn.download(2_000_000, 1.0)
        conn.reset()
        assert conn.state.cwnd_segments == 10

    def test_duration_and_throughput_consistent(self):
        conn = TCPConnection(constant_trace(5.0, 100.0))
        r = conn.download(400_000, 1.0)
        assert r.throughput_mbps == pytest.approx(
            400_000 * 8 / 1e6 / r.duration_s
        )


class TestThroughputShape:
    """The Fig. 2(c) behaviour: throughput depends strongly on size."""

    def test_throughput_below_capacity(self):
        conn = TCPConnection(constant_trace(5.0, 1000.0))
        for size in [2_000, 50_000, 500_000, 4_000_000]:
            start = conn.state.last_send_time_s + 2.0
            r = conn.download(size, start)
            assert r.throughput_mbps <= 5.0 + 1e-9

    def test_large_chunks_approach_capacity(self):
        conn = TCPConnection(constant_trace(5.0, 10_000.0))
        r = conn.download(8_000_000, 1.0)
        assert r.throughput_mbps > 4.2

    def test_small_chunks_far_below_capacity(self):
        conn = TCPConnection(constant_trace(18.0, 1000.0))
        start = conn.state.last_send_time_s + 2.0
        r = conn.download(2_000, start)
        assert r.throughput_mbps < 1.0

    def test_download_time_at_least_ideal(self):
        conn = TCPConnection(constant_trace(6.0, 1000.0))
        size = 1_000_000
        r = conn.download(size, 1.0)
        ideal = size / transfer_bytes(6.0, 1.0)
        assert r.duration_s >= ideal - 1e-9

    def test_idle_gap_triggers_slow_start_restart(self):
        conn = TCPConnection(constant_trace(8.0, 1000.0))
        conn.download(3_000_000, 1.0)  # warms the window
        warm_cwnd = conn.state.cwnd_segments
        assert warm_cwnd > 10
        start = conn.state.last_send_time_s + 5.0
        r = conn.download(300_000, start)
        assert r.slow_start_restarted is True

    def test_back_to_back_keeps_window(self):
        conn = TCPConnection(constant_trace(8.0, 1000.0))
        r1 = conn.download(3_000_000, 1.0)
        r2 = conn.download(300_000, r1.end_time_s)
        assert r2.slow_start_restarted is False

    def test_warm_connection_faster_than_cold(self):
        warm = TCPConnection(constant_trace(8.0, 1000.0))
        warm.download(3_000_000, 1.0)
        t = warm.state.last_send_time_s
        r_warm = warm.download(200_000, t)

        cold = TCPConnection(constant_trace(8.0, 1000.0))
        cold.download(3_000_000, 1.0)
        t = cold.state.last_send_time_s + 10.0
        r_cold = cold.download(200_000, t)
        assert r_warm.duration_s < r_cold.duration_s


class TestVaryingBandwidth:
    def test_download_spanning_zero_period(self):
        trace = PiecewiseConstantTrace.from_uniform([5.0, 0.0, 5.0], 2.0)
        conn = TCPConnection(trace)
        size = transfer_bytes(5.0, 3.0)  # needs ~3 s of 5 Mbps
        r = conn.download(size, 0.0)
        # Two seconds at 5, two stalled, rest at 5 => more than 4 s.
        assert r.duration_s > 4.0

    def test_never_finishing_raises(self):
        trace = PiecewiseConstantTrace.from_uniform([5.0, 0.0], 1.0)
        conn = TCPConnection(trace)
        with pytest.raises(RuntimeError):
            conn.download(transfer_bytes(5.0, 100.0), 0.0)

    def test_bandwidth_increase_speeds_tail(self):
        slow = TCPConnection(constant_trace(2.0, 1000.0))
        rising = TCPConnection(
            PiecewiseConstantTrace.from_uniform([2.0, 20.0], 2.0)
        )
        size = 2_000_000
        d_slow = slow.download(size, 0.0).duration_s
        d_rise = rising.download(size, 0.0).duration_s
        assert d_rise < d_slow


class TestAgreementWithEstimator:
    """The simulator and Algorithm 4 must agree closely on constant links

    (this is the substance of the paper's Fig. 5)."""

    @pytest.mark.parametrize("capacity", [1.0, 3.0, 5.0, 8.0])
    @pytest.mark.parametrize("size", [25_000, 187_000, 1_000_000])
    def test_estimator_matches_simulator(self, capacity, size):
        conn = TCPConnection(constant_trace(capacity, 10_000.0))
        # Warm up with one chunk, then idle so SSR state is interesting.
        conn.download(500_000, 1.0)
        start = conn.state.last_send_time_s + 1.5
        state = conn.snapshot(start)
        predicted = estimate_throughput(capacity, state, size)
        actual = conn.download(size, start).throughput_mbps
        assert predicted == pytest.approx(actual, rel=0.25, abs=0.3)

    @given(
        capacity=st.floats(min_value=0.5, max_value=10.0),
        size=st.floats(min_value=4_000, max_value=4_000_000),
        gap=st.floats(min_value=0.12, max_value=8.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_estimator_error_bounded_property(self, capacity, size, gap):
        """Paper Fig. 5: |Y - f| mostly within ~1 Mbps on constant links."""
        conn = TCPConnection(constant_trace(capacity, 100_000.0))
        conn.download(500_000, 1.0)
        start = conn.state.last_send_time_s + gap
        state = conn.snapshot(start)
        predicted = estimate_throughput(capacity, state, size)
        actual = conn.download(size, start).throughput_mbps
        assert abs(predicted - actual) < 1.0
