"""Tests for interventional download-time prediction (§4.4 / Fig. 12)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FuguPredictor,
    MPCAlgorithm,
    RandomABRAlgorithm,
    SessionConfig,
    StreamingSession,
    VeritasDownloadPredictor,
    constant_trace,
    paper_veritas_config,
)
from repro.video import short_video


@pytest.fixture(scope="module")
def predictor():
    return VeritasDownloadPredictor(paper_veritas_config())


@pytest.fixture(scope="module")
def session_log():
    video = short_video(duration_s=120.0, seed=6)
    trace = constant_trace(5.0, 2000.0)
    return StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()


class TestVeritasPredictor:
    def test_rejects_empty_history(self, predictor, session_log):
        record = session_log.records[10]
        with pytest.raises(ValueError):
            predictor.predict(
                session_log.truncated(0), 500_000,
                record.start_time_s, record.tcp_state,
            )

    def test_rejects_bad_size(self, predictor, session_log):
        record = session_log.records[10]
        with pytest.raises(ValueError):
            predictor.predict(
                session_log.truncated(10), -1,
                record.start_time_s, record.tcp_state,
            )

    def test_rejects_backwards_time(self, predictor, session_log):
        record = session_log.records[10]
        with pytest.raises(ValueError):
            predictor.predict(
                session_log.truncated(10), 500_000,
                0.0, record.tcp_state,
            )

    def test_prediction_close_to_actual(self, predictor, session_log):
        """Predict each held-out chunk's actual download time."""
        errors = []
        for n in range(20, session_log.n_chunks, 17):
            record = session_log.records[n]
            prefix = session_log.truncated(n)
            pred = predictor.predict(
                prefix, record.size_bytes, record.start_time_s, record.tcp_state
            )
            errors.append(abs(pred.download_time_s - record.download_time_s))
        assert np.median(errors) < 0.5

    def test_expected_capacity_reasonable(self, predictor, session_log):
        record = session_log.records[30]
        pred = predictor.predict(
            session_log.truncated(30), record.size_bytes,
            record.start_time_s, record.tcp_state,
        )
        assert pred.expected_capacity_mbps == pytest.approx(5.0, abs=1.5)
        assert pred.window_gap >= 0

    def test_interventional_sizes_supported(self, predictor, session_log):
        """The whole point: sizes the ABR never chose still get sane answers."""
        record = session_log.records[30]
        prefix = session_log.truncated(30)
        d_small = predictor.predict(
            prefix, 10_000, record.start_time_s, record.tcp_state
        ).download_time_s
        d_huge = predictor.predict(
            prefix, 8_000_000, record.start_time_s, record.tcp_state
        ).download_time_s
        assert d_small < d_huge
        # An 8 MB chunk on a 5 Mbps link takes at least 12.8 s.
        assert d_huge > 10.0


class TestFuguBias:
    """The Fig. 2(b) / Fig. 12 phenomenon, in miniature."""

    @pytest.fixture(scope="class")
    def biased_fugu(self):
        """Fugu trained on MPC logs over bimodal (poor/good) conditions."""
        logs = []
        for i, mbps in enumerate([0.25, 0.25, 9.5, 9.5]):
            video = short_video(duration_s=120.0, seed=i)
            trace = constant_trace(mbps, 5000.0)
            logs.append(
                StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
            )
        fugu = FuguPredictor(seed=0)
        fugu.train(logs, epochs=30, seed=1)
        return fugu, logs

    def test_fugu_underestimates_forced_large_chunk(self, biased_fugu):
        """On a poor-network session, forcing a large (high-quality) chunk:
        the associational model predicts far less than physics allows."""
        fugu, logs = biased_fugu
        poor_log = logs[0]  # 0.25 Mbps conditions
        sizes = list(poor_log.sizes_bytes()[:20])
        times = list(poor_log.download_times_s()[:20])
        forced_size = 1_000_000  # a high-quality chunk
        predicted = fugu.predict_download_time(forced_size, sizes, times)
        physical_floor = forced_size * 8 / 1e6 / 0.25  # 32 s at 0.25 Mbps
        assert predicted < 0.7 * physical_floor

    def test_fugu_ok_for_small_chunk(self, biased_fugu):
        """For the chunk size the deployed ABR would pick, Fugu is decent."""
        fugu, logs = biased_fugu
        poor_log = logs[0]
        n = 25
        record = poor_log.records[n]
        sizes = list(poor_log.sizes_bytes()[:n])
        times = list(poor_log.download_times_s()[:n])
        predicted = fugu.predict_download_time(record.size_bytes, sizes, times)
        assert predicted == pytest.approx(record.download_time_s, rel=0.6, abs=0.4)

    def test_veritas_beats_fugu_on_forced_chunk(self, biased_fugu):
        """Veritas's causal prediction respects the physical floor."""
        fugu, logs = biased_fugu
        poor_log = logs[0]
        n = 25
        record = poor_log.records[n]
        prefix = poor_log.truncated(n)
        forced_size = 1_000_000
        veritas = VeritasDownloadPredictor(paper_veritas_config())
        v_pred = veritas.predict(
            prefix, forced_size, record.start_time_s, record.tcp_state
        ).download_time_s
        f_pred = fugu.predict_download_time(
            forced_size,
            list(poor_log.sizes_bytes()[:n]),
            list(poor_log.download_times_s()[:n]),
        )
        physical = forced_size * 8 / 1e6 / 0.25
        assert abs(v_pred - physical) < abs(f_pred - physical)
