"""Tests for trace file interoperability (Mahimahi and CSV formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (
    PiecewiseConstantTrace,
    constant_trace,
    from_mahimahi,
    load_csv,
    load_mahimahi,
    random_walk_trace,
    save_csv,
    save_mahimahi,
    to_mahimahi,
)


class TestMahimahi:
    def test_constant_trace_rate_preserved(self):
        # 12 Mbps = 1000 MTU packets per second.
        trace = constant_trace(12.0, 5.0)
        stamps = to_mahimahi(trace)
        assert len(stamps) == pytest.approx(5 * 1000, abs=5)
        assert stamps == sorted(stamps)

    def test_round_trip_recovers_bandwidth(self):
        trace = PiecewiseConstantTrace.from_uniform([2.0, 8.0, 4.0], 5.0)
        recovered = from_mahimahi(to_mahimahi(trace), window_s=5.0)
        assert np.allclose(recovered.values, trace.values, atol=0.3)

    def test_random_walk_round_trip_mean(self):
        trace = random_walk_trace(5.0, 60.0, seed=3, low=2.0, high=8.0)
        recovered = from_mahimahi(to_mahimahi(trace), window_s=5.0)
        assert recovered.mean() == pytest.approx(trace.mean(), rel=0.05)

    def test_zero_bandwidth_interval_emits_nothing(self):
        trace = PiecewiseConstantTrace.from_uniform([6.0, 0.0, 6.0], 1.0)
        stamps = to_mahimahi(trace)
        # No deliveries inside the silent second (1000-2000 ms).
        silent = [t for t in stamps if 1005 < t <= 1995]
        assert not silent

    def test_file_round_trip(self, tmp_path):
        trace = PiecewiseConstantTrace.from_uniform([3.0, 6.0], 5.0)
        path = tmp_path / "trace.mm"
        save_mahimahi(trace, path)
        recovered = load_mahimahi(path, window_s=5.0)
        assert np.allclose(recovered.values, trace.values, atol=0.3)

    def test_from_mahimahi_validations(self):
        with pytest.raises(ValueError):
            from_mahimahi([])
        with pytest.raises(ValueError):
            from_mahimahi([10], window_s=0.0)
        with pytest.raises(ValueError):
            from_mahimahi([-5, 10])

    def test_to_mahimahi_validates_mtu(self):
        with pytest.raises(ValueError):
            to_mahimahi(constant_trace(5.0, 1.0), mtu_bytes=0)


class TestCSV:
    def test_round_trip_exact(self, tmp_path):
        trace = PiecewiseConstantTrace.from_uniform([1.5, 7.25, 3.0], 2.5)
        path = tmp_path / "trace.csv"
        save_csv(trace, path)
        recovered = load_csv(path)
        assert np.allclose(recovered.boundaries, trace.boundaries)
        assert np.allclose(recovered.values, trace.values)

    def test_header_written(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_csv(constant_trace(4.0, 10.0), path)
        first = path.read_text().splitlines()[0]
        assert first == "time_s,bandwidth_mbps"

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_load_rejects_single_row(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("time_s,bandwidth_mbps\n0.0,5.0\n")
        with pytest.raises(ValueError):
            load_csv(path)
