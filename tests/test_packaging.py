"""Packaging smoke tests and repository-hygiene guards.

The first class pins the installability contract: the ``repro`` package
and its CLI import whether the library is installed or run from ``src``,
and pyproject.toml wires a working ``repro`` console entry point.  The
second guards against committed build residue (PR 4 accidentally tracked
13 ``__pycache__/*.pyc`` files) so broken installs and tracked bytecode
cannot land again.
"""

from __future__ import annotations

import subprocess
import sys
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestPackaging:
    def test_package_imports(self):
        import repro
        import repro.cli

        assert callable(repro.cli.main)
        assert hasattr(repro, "CounterfactualEngine")

    def test_pyproject_metadata(self):
        pyproject = REPO_ROOT / "pyproject.toml"
        assert pyproject.is_file(), "pyproject.toml must exist at the repo root"
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        project = data["project"]
        assert project["name"] == "repro"
        assert any(dep.startswith("numpy") for dep in project["dependencies"])
        # src layout package discovery.
        assert data["tool"]["setuptools"]["package-dir"][""] == "src"
        assert (REPO_ROOT / "src" / "repro" / "__init__.py").is_file()

    def test_console_entry_point_resolves(self):
        """The [project.scripts] target must import and be callable."""
        pyproject = REPO_ROOT / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        target = data["project"]["scripts"]["repro"]
        module_name, _, attr = target.partition(":")
        module = __import__(module_name, fromlist=[attr])
        entry = getattr(module, attr)
        assert callable(entry)

    def test_cli_runs_as_module(self):
        """`python -m repro.cli --help` exits 0 from the src tree."""
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0
        assert "counterfactual" in result.stdout


class TestTrackedArtifacts:
    @pytest.fixture(scope="class")
    def tracked_files(self):
        try:
            result = subprocess.run(
                ["git", "ls-files"],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            pytest.skip("git unavailable")
        if result.returncode != 0:
            pytest.skip("not a git checkout")
        return result.stdout.splitlines()

    def test_no_tracked_bytecode(self, tracked_files):
        offenders = [
            path
            for path in tracked_files
            if "__pycache__" in path or path.endswith(".pyc")
        ]
        assert offenders == [], f"bytecode committed to git: {offenders}"

    def test_no_tracked_build_residue(self, tracked_files):
        offenders = [
            path
            for path in tracked_files
            if ".egg-info" in path
            or path.startswith((".pytest_cache/", ".benchmarks/"))
            # BENCH_seed.json / BENCH_pr8.json / BENCH_pr9.json are the
            # committed perf baselines the CI perf-regression job diffs
            # against; every other BENCH_*.json is a local run artifact
            # that must stay untracked.
            or (
                path.startswith("BENCH_")
                and path.endswith(".json")
                and path
                not in ("BENCH_seed.json", "BENCH_pr8.json", "BENCH_pr9.json")
            )
        ]
        assert offenders == [], f"build residue committed to git: {offenders}"

    def test_gitignore_covers_residue(self):
        gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
        for pattern in (
            "__pycache__/",
            "*.pyc",
            ".pytest_cache/",
            ".hypothesis/",
            ".benchmarks/",
            "*.egg-info/",
            "BENCH_*.json",
        ):
            assert pattern in gitignore, f".gitignore misses {pattern!r}"
