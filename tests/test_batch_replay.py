"""Parity suite for the lockstep batch replay engine (PR 4).

The batch engine promises **bit-identical** results to per-lane serial
replay at every layer:

* ``TraceBatch.time_to_transfer_batch`` vs the scalar
  ``PiecewiseConstantTrace.time_to_transfer`` (vectorised bisection over
  the stacked cumulative-bytes integrals),
* ``BatchStreamingSession`` (lockstep chunk loop + ``BatchTCPConnection``)
  vs per-lane ``StreamingSession`` runs — exact vectorised ABR decisions
  for BBA/BOLA/MPC, the automatic per-lane scalar fallback, and fused
  multi-setting batches (different ABRs / buffer capacities in one loop),
* ``compute_metrics_batch`` vs per-lane ``compute_metrics`` — without ever
  materializing ``ChunkRecord`` objects,
* ``CounterfactualEngine`` with ``use_batch=True`` vs ``use_batch=False``.

Edge cases covered: stalls (starved lanes), buffer-overflow sleeps (fast
lanes), zero-capacity intervals mid-trace, K=1 batches, and transfers
starting beyond the trace span.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.player.logs as logs_module
from repro import (
    BatchStreamingSession,
    CounterfactualEngine,
    SessionConfig,
    StreamingSession,
    TraceBatch,
    Video,
    change_abr,
    change_buffer,
    compute_metrics,
    compute_metrics_batch,
    default_ladder,
    fast_setting_a,
    paper_corpus,
    paper_veritas_config,
    run_setting,
    run_setting_batch,
)
from repro.abr import BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm
from repro.net.trace import boundary_key
from repro.net.trace import PiecewiseConstantTrace
from repro.player.batch_session import LaneGroup, abr_supports_batch_replay


def lane_traces(
    n_lanes: int, seed: int = 0, n_intervals: int = 40, interval_s: float = 5.0
) -> list[PiecewiseConstantTrace]:
    """Shared-grid lanes spanning slow, fast and zero-capacity shapes."""
    rng = np.random.default_rng(seed)
    traces = []
    for k in range(n_lanes):
        if k % 4 == 0:
            # Starved lane: frequent stalls.
            vals = rng.uniform(0.05, 0.6, n_intervals)
        elif k % 4 == 1:
            # Fast lane: buffer-overflow sleeps every chunk.
            vals = rng.uniform(5.0, 12.0, n_intervals)
        else:
            vals = rng.uniform(0.2, 8.0, n_intervals)
        if k % 3 == 2:
            # Zero-capacity intervals mid-trace (transfers must wait).
            lo = int(rng.integers(2, n_intervals - 4))
            vals[lo : lo + 2] = 0.0
        traces.append(PiecewiseConstantTrace.from_uniform(vals, interval_s))
    return traces


@pytest.fixture(scope="module")
def video() -> Video:
    return Video.generate(default_ladder(), duration_s=60.0, seed=7)


class TestTraceBatch:
    def test_rejects_mismatched_boundaries(self):
        a = PiecewiseConstantTrace.from_uniform([1.0, 2.0], 5.0)
        b = PiecewiseConstantTrace.from_uniform([1.0, 2.0], 4.0)
        with pytest.raises(ValueError, match="share identical boundaries"):
            TraceBatch([a, b])
        assert TraceBatch.from_traces([a, b]) is None
        assert TraceBatch.from_traces([]) is None

    def test_from_traces_accepts_shared_grid(self):
        lanes = lane_traces(3)
        batch = TraceBatch.from_traces(lanes)
        assert batch is not None
        assert batch.n_lanes == 3
        assert batch.lane(1) is lanes[1]

    def test_values_at_matches_scalar(self):
        lanes = lane_traces(5, seed=3)
        batch = TraceBatch(lanes)
        rng = np.random.default_rng(0)
        ts = rng.uniform(-10.0, 250.0, 5)
        got = batch.values_at(ts)
        for k, t in enumerate(ts):
            assert got[k] == lanes[k].value_at(float(t))

    def test_time_to_transfer_batch_bit_identical(self):
        rng = np.random.default_rng(11)
        lanes = lane_traces(9, seed=5)
        batch = TraceBatch(lanes)
        for _ in range(300):
            starts = rng.uniform(-5.0, 230.0, 9)  # spans before/past the grid
            sizes = 10 ** rng.uniform(1.0, 7.5, 9)
            sizes[rng.random(9) < 0.1] = 0.0
            got = batch.time_to_transfer_batch(starts, sizes)
            for k in range(9):
                want = lanes[k].time_to_transfer(float(starts[k]), float(sizes[k]))
                assert got[k] == want  # bit-identical, no tolerance

    def test_time_to_transfer_batch_lane_subset(self):
        lanes = lane_traces(6, seed=9)
        batch = TraceBatch(lanes)
        subset = np.array([1, 3, 4])
        starts = np.array([3.0, 17.0, 160.0])
        sizes = np.array([5e4, 2e6, 8e5])
        got = batch.time_to_transfer_batch(starts, sizes, lanes=subset)
        for j, k in enumerate(subset):
            want = lanes[k].time_to_transfer(float(starts[j]), float(sizes[j]))
            assert got[j] == want

    def test_vectorised_bisection_path_bit_identical(self):
        # Enough cold lanes to engage the lockstep binary search (the
        # small-subset scalar shortcut is bypassed).
        lanes = lane_traces(24, seed=13)
        batch = TraceBatch(lanes)
        rng = np.random.default_rng(2)
        starts = rng.uniform(0.0, 150.0, 24)
        sizes = 10 ** rng.uniform(6.0, 7.6, 24)  # big: spill many intervals
        got = batch.time_to_transfer_batch(starts, sizes)
        for k in range(24):
            want = lanes[k].time_to_transfer(float(starts[k]), float(sizes[k]))
            assert got[k] == want

    def test_zero_trailing_bandwidth_raises(self):
        vals = [2.0, 1.0, 0.0]
        dead = PiecewiseConstantTrace.from_uniform(vals, 5.0)
        batch = TraceBatch([dead, dead])
        with pytest.raises(RuntimeError, match="trailing bandwidth"):
            batch.time_to_transfer_batch(
                np.array([0.0, 0.0]), np.array([1e9, 1e9])
            )


def assert_logs_identical(serial, lane):
    assert serial.abr_name == lane.abr_name
    assert serial.buffer_capacity_s == lane.buffer_capacity_s
    assert serial.chunk_duration_s == lane.chunk_duration_s
    assert serial.rtt_s == lane.rtt_s
    assert serial.startup_time_s == lane.startup_time_s
    assert serial.total_rebuffer_s == lane.total_rebuffer_s
    assert serial.records == lane.records  # frozen dataclasses: exact floats


class TestBatchSessionParity:
    @pytest.mark.parametrize("abr_factory", [BBAAlgorithm, BOLAAlgorithm])
    def test_vectorised_abrs_bit_identical(self, video, abr_factory):
        traces = lane_traces(6, seed=1)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(video, abr_factory, traces, config).run()
        assert batch_log.n_lanes == 6
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, abr_factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_mpc_vectorised_bit_identical(self, video):
        """MPC's history-driven vectorised decider matches serial replay."""
        traces = lane_traces(4, seed=2)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(video, MPCAlgorithm, traces, config).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, MPCAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_mpc_non_robust_bit_identical(self, video):
        """The plain-harmonic-mean branch (robust=False) must also match
        serial replay bitwise — its window sum uses a different reduction
        than the robust predictor's sequential accumulation."""
        factory = lambda: MPCAlgorithm(robust=False)  # noqa: E731
        traces = lane_traces(5, seed=7)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(video, factory, traces, config).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_history_fallback_abr_bit_identical(self, video):
        """An ABR without choose_quality_batch that reads throughput history
        exercises the per-lane fallback contexts (and their history
        feeding) now that MPC decides vectorised."""
        from repro.abr import RateBasedAlgorithm

        traces = lane_traces(4, seed=3)
        config = SessionConfig(buffer_capacity_s=6.0)
        batch_log = BatchStreamingSession(
            video, RateBasedAlgorithm, traces, config
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(
                video, RateBasedAlgorithm(), trace, config
            ).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_k1_batch_bit_identical(self, video):
        traces = lane_traces(1, seed=4)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(video, BBAAlgorithm, traces, config).run()
        serial = StreamingSession(video, BBAAlgorithm(), traces[0], config).run()
        assert batch_log.n_lanes == 1
        assert_logs_identical(serial, batch_log.lane(0))

    def test_request_overhead_bit_identical(self, video):
        traces = lane_traces(3, seed=6)
        config = SessionConfig(buffer_capacity_s=5.0, request_overhead_s=0.05)
        batch_log = BatchStreamingSession(video, BOLAAlgorithm, traces, config).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BOLAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_multi_setting_batch_bit_identical(self, video):
        """One lockstep loop over partitions with different ABRs/buffers."""
        traces = lane_traces(9, seed=8)
        groups = [
            LaneGroup(BBAAlgorithm, SessionConfig(buffer_capacity_s=5.0), traces[:3]),
            LaneGroup(BOLAAlgorithm, SessionConfig(buffer_capacity_s=12.0), traces[3:6]),
            LaneGroup(MPCAlgorithm, SessionConfig(buffer_capacity_s=5.0), traces[6:]),
        ]
        batch_log = BatchStreamingSession.fused(video, groups).run()
        factories = [BBAAlgorithm] * 3 + [BOLAAlgorithm] * 3 + [MPCAlgorithm] * 3
        capacities = [5.0] * 3 + [12.0] * 3 + [5.0] * 3
        for k, trace in enumerate(traces):
            serial = StreamingSession(
                video,
                factories[k](),
                trace,
                SessionConfig(buffer_capacity_s=capacities[k]),
            ).run()
            assert_logs_identical(serial, batch_log.lane(k))

    def test_fused_rejects_mixed_rtt(self, video):
        traces = lane_traces(2, seed=8)
        groups = [
            LaneGroup(BBAAlgorithm, SessionConfig(rtt_s=0.08), traces[:1]),
            LaneGroup(BBAAlgorithm, SessionConfig(rtt_s=0.12), traces[1:]),
        ]
        with pytest.raises(ValueError, match="share rtt_s"):
            BatchStreamingSession.fused(video, groups)

    def test_overridden_scalar_decision_bypasses_inherited_batch(self, video):
        """A subclass overriding choose_quality but inheriting
        choose_quality_batch must take the scalar fallback, not the stale
        vectorised path — parity with serial replay is the contract."""

        class PinnedBBA(BBAAlgorithm):
            name = "pinned-bba"

            def choose_quality(self, context):
                return min(1, context.video.n_qualities - 1)

        traces = lane_traces(3, seed=12)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(video, PinnedBBA, traces, config).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, PinnedBBA(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))
        assert set(batch_log.qualities.ravel().tolist()) == {1}

    def test_observe_download_abrs_are_rejected(self, video):
        class FeedbackABR(BBAAlgorithm):
            def observe_download(self, record):  # pragma: no cover - marker
                pass

        assert not abr_supports_batch_replay(FeedbackABR())
        assert abr_supports_batch_replay(MPCAlgorithm())
        with pytest.raises(ValueError, match="observe_download"):
            BatchStreamingSession(
                video, FeedbackABR, lane_traces(2), SessionConfig()
            ).run()


class TestBatchMetrics:
    def test_metrics_match_per_lane_without_records(self, video, monkeypatch):
        traces = lane_traces(5, seed=10)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(video, BBAAlgorithm, traces, config).run()
        expected = [compute_metrics(batch_log.lane(k)) for k in range(5)]

        calls = {"n": 0}
        real = logs_module.ChunkRecord

        class CountingRecord(real):
            def __init__(self, *args, **kwargs):  # pragma: no cover - guard
                calls["n"] += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(logs_module, "ChunkRecord", CountingRecord)
        got = compute_metrics_batch(batch_log)
        assert calls["n"] == 0  # metric-only path materializes no records
        assert got == expected


class TestEnginePaths:
    @pytest.fixture(scope="class")
    def corpus(self):
        return paper_corpus(count=2, duration_s=240.0, seed=5)

    @pytest.fixture(scope="class")
    def setting_a(self):
        return fast_setting_a(duration_s=120.0, seed=7)

    def test_evaluate_many_batch_matches_serial(self, corpus, setting_a):
        settings_b = [
            change_abr(setting_a, "bba"),
            change_abr(setting_a, "bola"),
            change_buffer(setting_a, 15.0),
            change_abr(setting_a, "mpc"),  # history-driven vectorised partition
        ]
        batch_engine = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=0
        )
        serial_engine = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=0, use_batch=False
        )
        prepared = batch_engine.prepare_corpus(corpus, setting_a)
        batch_results = batch_engine.evaluate_many(prepared, settings_b)
        serial_results = serial_engine.evaluate_many(prepared, settings_b)
        for rb, rs in zip(batch_results, serial_results):
            for tb, ts in zip(rb.per_trace, rs.per_trace):
                assert tb.truth_metrics == ts.truth_metrics
                assert tb.baseline_metrics == ts.baseline_metrics
                assert tb.veritas_metrics == ts.veritas_metrics

    def test_evaluate_trace_batch_matches_serial(self, corpus, setting_a):
        setting_b = change_abr(setting_a, "bba")
        batch_engine = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=0
        )
        serial_engine = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=0, use_batch=False
        )
        got = batch_engine.evaluate_trace(0, corpus[0], setting_a, setting_b, seed=1)
        want = serial_engine.evaluate_trace(0, corpus[0], setting_a, setting_b, seed=1)
        assert got.truth_metrics == want.truth_metrics
        assert got.baseline_metrics == want.baseline_metrics
        assert got.veritas_metrics == want.veritas_metrics

    def test_run_setting_batch_matches_run_setting(self, corpus, setting_a):
        setting_b = change_abr(setting_a, "bola")
        horizon = max(corpus[0].end_time, 3.0 * setting_b.video.duration_s)
        lanes = [t.extended(horizon) for t in corpus]
        assert len({boundary_key(t) for t in lanes}) == 1
        batch_log = run_setting_batch(setting_b, lanes)
        for k, lane in enumerate(lanes):
            assert_logs_identical(
                run_setting(setting_b, lane), batch_log.lane(k)
            )


class TestKernelTierRegistry:
    """Construction-time validation of ``kernel=`` names (PR 6)."""

    def test_known_tiers(self):
        from repro.tcp.connection import DEFAULT_KERNEL, KERNEL_TIERS

        assert KERNEL_TIERS == (
            "reference", "analytic", "scratch", "compiled", "fused"
        )
        assert DEFAULT_KERNEL in KERNEL_TIERS

    def test_batch_connection_rejects_unknown_kernel(self):
        from repro.tcp.connection import BatchTCPConnection

        batch = TraceBatch(lane_traces(2))
        with pytest.raises(ValueError, match="available tiers"):
            BatchTCPConnection(batch, kernel="warp-drive")

    def test_batch_session_rejects_unknown_kernel(self, video):
        with pytest.raises(ValueError, match="available tiers"):
            BatchStreamingSession(
                video, BBAAlgorithm, lane_traces(2), SessionConfig(),
                kernel="warp-drive",
            )

    def test_engine_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="available tiers"):
            CounterfactualEngine(
                paper_veritas_config(), n_samples=2, seed=0, kernel="warp-drive"
            )

    def test_every_tier_constructs(self):
        from repro.tcp.connection import KERNEL_TIERS, BatchTCPConnection

        batch = TraceBatch(lane_traces(2))
        for tier in KERNEL_TIERS:
            conn = BatchTCPConnection(batch, kernel=tier)
            assert conn.kernel == tier
            # "compiled" may legitimately degrade to "scratch" and "fused"
            # to "compiled"/"scratch"; everything else serves exactly the
            # requested tier.
            if tier == "compiled":
                assert conn._tier in ("compiled", "scratch")
            elif tier == "fused":
                assert conn._tier in ("fused", "compiled", "scratch")
            else:
                assert conn._tier == tier


REPLAY_TIERS = ("reference", "analytic", "scratch", "compiled", "fused")


class TestKernelTierParity:
    """Threshold-boundary parity across every replay kernel tier (PR 6).

    The scratch tier absorbs two scalar-fallback cutoffs — the <8-lane
    bisect shortcut and the ``_VECTOR_ROUNDS_MIN`` (= 12) round-schedule
    minimum — so lane counts 1/7/8 and downloads taking 11/12/13
    reference rounds sit exactly on those seams.  Every case must be
    bit-identical on every tier.
    """

    @pytest.mark.parametrize("n_lanes", [1, 7, 8])
    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_lane_count_boundaries(self, video, n_lanes, tier):
        traces = lane_traces(n_lanes, seed=31)
        config = SessionConfig(buffer_capacity_s=5.0)
        batch_log = BatchStreamingSession(
            video, BBAAlgorithm, traces, config, kernel=tier
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, BBAAlgorithm(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))

    @staticmethod
    def _size_for_rounds(n_rounds: int) -> float:
        """A chunk size whose reference loop runs exactly ``n_rounds``
        window-limited rounds (exiting via data exhaustion) from a fresh
        connection's (cwnd=10, default-ssthresh) schedule."""
        from repro.tcp.connection import _grow_window
        from repro.tcp.constants import INITIAL_SSTHRESH_SEGMENTS, MSS_BYTES

        cwnd, sent = 10, 0
        for _ in range(n_rounds - 1):
            sent += cwnd
            cwnd = _grow_window(cwnd, INITIAL_SSTHRESH_SEGMENTS)
        return (sent + cwnd) * MSS_BYTES - 750.0

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_round_count_boundaries(self, tier):
        """Downloads engineered to take 3/11/12/13 reference rounds —
        straddling ``_VECTOR_ROUNDS_MIN`` (= 12) — all bit-identical."""
        from repro.tcp.connection import BatchTCPConnection, TCPConnection

        assert BatchTCPConnection._VECTOR_ROUNDS_MIN == 12  # 11/12/13 on the seam
        targets = [3, 11, 12, 13]
        # 400 Mbps: the BDP (4 MB) exceeds cwnd*MSS through round 13, so
        # the loop below never exits pipe-full before its target round.
        trace = PiecewiseConstantTrace.from_uniform([400.0] * 4, 50.0)
        sizes = np.array([self._size_for_rounds(r) for r in targets])
        starts = np.zeros(len(targets))

        refs = [TCPConnection(trace, kernel="reference") for _ in targets]
        want_results = [
            ref.download(float(sizes[k]), 0.0) for k, ref in enumerate(refs)
        ]
        for k, (target, want) in enumerate(zip(targets, want_results)):
            assert want.rounds == target  # the sizes hit their targets

        conn = BatchTCPConnection(TraceBatch([trace] * len(targets)), kernel=tier)
        got = conn.download_batch(sizes, starts)
        for k, want in enumerate(want_results):
            assert got.end_times_s[k] == want.end_time_s
            assert conn._cwnd[k] == refs[k].state.cwnd_segments
            assert conn._ssthresh[k] == refs[k].state.ssthresh_segments

    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_zero_capacity_interval_downloads(self, tier):
        """Transfers that must wait out mid-trace zero-capacity intervals
        agree with the scalar kernel on every tier."""
        from repro.tcp.connection import BatchTCPConnection, TCPConnection

        vals = [4.0, 0.0, 0.0, 2.0, 6.0]
        trace = PiecewiseConstantTrace.from_uniform(vals, 5.0)
        n = 6
        rng = np.random.default_rng(17)
        conn = BatchTCPConnection(TraceBatch([trace] * n), kernel=tier)
        serial = [TCPConnection(trace, kernel="analytic") for _ in range(n)]
        starts = np.zeros(n)
        for _ in range(4):
            sizes = 10 ** rng.uniform(4.5, 6.5, n)
            got = conn.download_batch(sizes, starts)
            for k in range(n):
                want = serial[k].download(float(sizes[k]), float(starts[k]))
                assert got.end_times_s[k] == want.end_time_s
                assert conn._cwnd[k] == serial[k].state.cwnd_segments
            starts = got.end_times_s + rng.uniform(0.0, 0.4, n)

    @pytest.mark.parametrize("abr_factory", [BBAAlgorithm, BOLAAlgorithm, MPCAlgorithm])
    @pytest.mark.parametrize("tier", REPLAY_TIERS)
    def test_every_abr_on_every_tier(self, video, abr_factory, tier):
        traces = lane_traces(5, seed=33)
        config = SessionConfig(buffer_capacity_s=8.0)
        batch_log = BatchStreamingSession(
            video, abr_factory, traces, config, kernel=tier
        ).run()
        for k, trace in enumerate(traces):
            serial = StreamingSession(video, abr_factory(), trace, config).run()
            assert_logs_identical(serial, batch_log.lane(k))
