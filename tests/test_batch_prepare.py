"""Parity suite for corpus-lockstep preparation (PR 5).

The batched preparation pipeline promises **bit-identical** results to the
per-trace serial path at every layer:

* ``forward_backward_batch`` / ``viterbi_path_batch`` vs the scalar
  recursions (stacked ``matmul`` reproduces ``np.dot``'s floats exactly),
* ``sample_state_paths_stack`` vs per-session ``sample_state_paths`` under
  the same seeds (one uniform block per session either way),
* ``VeritasAbduction.solve_batch`` / ``sample_traces_batch`` vs per-log
  ``solve`` / ``sample_traces`` — including ragged chunk counts,
* ``CounterfactualEngine.prepare_corpus`` with ``use_batch=True`` (fused
  Setting-A deployment + stacked abduction) vs ``use_batch=False``, serial
  and on the fork pool, down to every ``SessionLog`` record, baseline
  trace and posterior sample.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro import (
    CounterfactualEngine,
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    change_abr,
    fast_setting_a,
    paper_corpus,
    paper_veritas_config,
    random_walk_trace,
    short_video,
)
from repro.core import VeritasAbduction, sample_traces_batch
from repro.core.forward_backward import (
    forward_backward,
    forward_backward_batch,
)
from repro.core.sampler import sample_state_paths, sample_state_paths_stack
from repro.core.transitions import TransitionModel, tridiagonal_matrix
from repro.core.viterbi import viterbi_path, viterbi_path_batch
from repro.net.trace import PiecewiseConstantTrace


def small_corpus(count: int, seed: int = 11, duration_s: float = 400.0):
    return paper_corpus(count=count, duration_s=duration_s, seed=seed)


@pytest.fixture(scope="module")
def setting_a():
    return fast_setting_a(duration_s=180.0)


@pytest.fixture(scope="module")
def session_logs():
    """Five MPC logs over distinct traces (equal chunk counts)."""
    video = short_video(duration_s=120.0, seed=3)
    logs = []
    for s in (10, 11, 12, 13, 14):
        trace = random_walk_trace(
            mean_mbps=5.0, duration=400.0, seed=s, low=2.0, high=9.0
        )
        logs.append(
            StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
        )
    return logs


def assert_traces_equal(a: PiecewiseConstantTrace, b: PiecewiseConstantTrace):
    assert np.array_equal(a.boundaries, b.boundaries)
    assert np.array_equal(a.values, b.values)


def assert_prepared_equal(batch, serial):
    assert len(batch.per_trace) == len(serial.per_trace)
    assert batch.n_samples == serial.n_samples
    for pa, pb in zip(batch.per_trace, serial.per_trace):
        assert pa.trace_index == pb.trace_index
        # Frozen dataclass records: exact floats in every field.
        assert pa.log_a.to_dict() == pb.log_a.to_dict()
        assert pa.setting_a_metrics == pb.setting_a_metrics
        assert pa.replay_horizon_s == pb.replay_horizon_s
        assert_traces_equal(pa.baseline, pb.baseline)
        assert len(pa.samples) == len(pb.samples)
        for sa, sb in zip(pa.samples, pb.samples):
            assert_traces_equal(sa, sb)


class TestStackedRecursions:
    """The core/ batch recursions vs their scalar references."""

    def _problem_stack(self, session_logs):
        abduction = VeritasAbduction(paper_veritas_config())
        from repro.core.ehmm import build_problems_batch

        problems = build_problems_batch(
            session_logs,
            abduction.grid,
            abduction.transitions,
            abduction.emission,
            abduction.config.delta_s,
        )
        log_b = np.stack([p.log_emissions for p in problems])
        deltas = np.stack([p.deltas for p in problems])
        return problems, log_b, deltas, abduction.transitions

    def test_forward_backward_batch_bit_identical(self, session_logs):
        problems, log_b, deltas, transitions = self._problem_stack(session_logs)
        batch = forward_backward_batch(log_b, transitions, deltas)
        for t, problem in enumerate(problems):
            scalar = forward_backward(
                problem.log_emissions, transitions, problem.deltas
            )
            assert np.array_equal(batch.gamma[t], scalar.gamma)
            assert np.array_equal(batch.xi[t], scalar.xi)
            assert batch.session(t).log_likelihood == scalar.log_likelihood

    def test_viterbi_batch_bit_identical(self, session_logs):
        problems, log_b, deltas, transitions = self._problem_stack(session_logs)
        batch = viterbi_path_batch(log_b, transitions, deltas)
        for t, problem in enumerate(problems):
            scalar = viterbi_path(problem.log_emissions, transitions, problem.deltas)
            assert np.array_equal(batch.states[t], scalar.states)
            assert batch.session(t).log_probability == scalar.log_probability

    def test_single_chunk_stack(self):
        transitions = TransitionModel(tridiagonal_matrix(4))
        log_b = np.log(np.random.default_rng(0).random((3, 1, 4)))
        deltas = np.zeros((3, 1), dtype=int)
        fb = forward_backward_batch(log_b, transitions, deltas)
        assert fb.xi.shape == (3, 0, 4, 4)
        vit = viterbi_path_batch(log_b, transitions, deltas)
        for t in range(3):
            scalar = forward_backward(log_b[t], transitions, deltas[t])
            assert np.array_equal(fb.gamma[t], scalar.gamma)
            assert np.array_equal(
                vit.states[t], viterbi_path(log_b[t], transitions, deltas[t]).states
            )

    def test_batch_input_validation(self):
        transitions = TransitionModel(tridiagonal_matrix(3))
        with pytest.raises(ValueError, match="3-D"):
            forward_backward_batch(np.zeros((2, 3)), transitions, np.zeros((2, 3)))
        with pytest.raises(ValueError, match="shape"):
            forward_backward_batch(
                np.zeros((2, 4, 3)), transitions, np.zeros((2, 3), dtype=int)
            )
        with pytest.raises(ValueError, match="3-D"):
            viterbi_path_batch(np.zeros((4, 3)), transitions, np.zeros((4, 3)))

    def test_stacked_sampler_matches_scalar(self, session_logs):
        problems, log_b, deltas, transitions = self._problem_stack(session_logs)
        fb = forward_backward_batch(log_b, transitions, deltas)
        vit = viterbi_path_batch(log_b, transitions, deltas)
        seeds = [100 + t for t in range(len(session_logs))]
        stack = sample_state_paths_stack(vit.states, fb.xi, 4, seeds)
        for t in range(len(session_logs)):
            reference = sample_state_paths(
                vit.states[t], fb.xi[t], 4, seed=seeds[t]
            )
            assert np.array_equal(stack[t], np.stack(reference))

    def test_stacked_sampler_degenerate_columns(self):
        """Unreachable pairwise-posterior columns fall back to Viterbi."""
        rng = np.random.default_rng(5)
        n_sessions, n_chunks, k = 3, 6, 4
        xi = rng.random((n_sessions, n_chunks - 1, k, k))
        xi[0, 2] = 0.0  # every column degenerate at one chunk
        xi[1, 3, :, 1] = 0.0  # one successor column degenerate
        states = rng.integers(0, k, (n_sessions, n_chunks))
        seeds = [7, 8, 9]
        stack = sample_state_paths_stack(states, xi, 5, seeds)
        for t in range(n_sessions):
            reference = sample_state_paths(states[t], xi[t], 5, seed=seeds[t])
            assert np.array_equal(stack[t], np.stack(reference))


class TestSolveBatch:
    def test_solve_batch_matches_solve(self, session_logs):
        abduction = VeritasAbduction(paper_veritas_config())
        durations = [500.0 + 10.0 * i for i in range(len(session_logs))]
        batch = abduction.solve_batch(session_logs, trace_duration_s=durations)
        for log, duration, posterior in zip(session_logs, durations, batch):
            scalar = abduction.solve(log, trace_duration_s=duration)
            assert np.array_equal(
                posterior.viterbi.states, scalar.viterbi.states
            )
            assert posterior.viterbi.log_probability == scalar.viterbi.log_probability
            assert np.array_equal(posterior.smoothing.gamma, scalar.smoothing.gamma)
            assert np.array_equal(posterior.smoothing.xi, scalar.smoothing.xi)
            assert posterior.log_likelihood == scalar.log_likelihood
            assert_traces_equal(posterior.map_trace(), scalar.map_trace())

    def test_solve_batch_ragged_chunk_counts(self, session_logs):
        """Sessions of different lengths partition by chunk count."""
        abduction = VeritasAbduction(paper_veritas_config())
        ragged = list(session_logs[:3])
        ragged.append(session_logs[0].truncated(20))
        ragged.append(session_logs[1].truncated(20))
        ragged.append(session_logs[2].truncated(7))  # singleton partition
        batch = abduction.solve_batch(ragged, trace_duration_s=600.0)
        for log, posterior in zip(ragged, batch):
            scalar = abduction.solve(log, trace_duration_s=600.0)
            assert np.array_equal(posterior.viterbi.states, scalar.viterbi.states)
            assert np.array_equal(posterior.smoothing.gamma, scalar.smoothing.gamma)
            assert np.array_equal(posterior.smoothing.xi, scalar.smoothing.xi)

    def test_sample_traces_batch_matches_scalar(self, session_logs):
        abduction = VeritasAbduction(paper_veritas_config())
        posteriors = abduction.solve_batch(session_logs, trace_duration_s=500.0)
        seeds = [40 + i for i in range(len(posteriors))]
        batched = sample_traces_batch(posteriors, 5, seeds)
        for posterior, seed, samples in zip(posteriors, seeds, batched):
            reference = posterior.sample_traces(5, seed=seed)
            assert len(samples) == len(reference)
            for a, b in zip(samples, reference):
                assert_traces_equal(a, b)

    def test_solve_batch_validation(self, session_logs):
        abduction = VeritasAbduction(paper_veritas_config())
        with pytest.raises(ValueError, match="at least one"):
            abduction.solve_batch([])
        with pytest.raises(ValueError, match="one trace duration per log"):
            abduction.solve_batch(session_logs, trace_duration_s=[1.0, 2.0])
        with pytest.raises(ValueError, match="one seed per posterior"):
            sample_traces_batch(
                abduction.solve_batch(session_logs[:2]), 3, [1]
            )


class TestPrepareCorpusParity:
    def test_batch_prepare_matches_serial(self, setting_a):
        corpus = small_corpus(5)
        engine_batch = CounterfactualEngine(
            paper_veritas_config(), n_samples=4, seed=3
        )
        engine_serial = CounterfactualEngine(
            paper_veritas_config(), n_samples=4, seed=3, use_batch=False
        )
        prepared_batch = engine_batch.prepare_corpus(corpus, setting_a)
        prepared_serial = engine_serial.prepare_corpus(corpus, setting_a)
        assert_prepared_equal(prepared_batch, prepared_serial)

        # Downstream queries against either prepared corpus agree exactly.
        setting_b = change_abr(setting_a, "bba")
        result_batch = engine_batch.evaluate_many(prepared_batch, [setting_b])[0]
        result_serial = engine_serial.evaluate_many(
            prepared_serial, [setting_b]
        )[0]
        for ta, tb in zip(result_batch.per_trace, result_serial.per_trace):
            assert ta.truth_metrics == tb.truth_metrics
            assert ta.baseline_metrics == tb.baseline_metrics
            assert ta.veritas_metrics == tb.veritas_metrics

    def test_single_trace_corpus(self, setting_a):
        """K=1 corpora take the per-trace path and still match."""
        corpus = small_corpus(1)
        engine_batch = CounterfactualEngine(
            paper_veritas_config(), n_samples=2, seed=5
        )
        engine_serial = CounterfactualEngine(
            paper_veritas_config(), n_samples=2, seed=5, use_batch=False
        )
        assert_prepared_equal(
            engine_batch.prepare_corpus(corpus, setting_a),
            engine_serial.prepare_corpus(corpus, setting_a),
        )

    def test_single_sample_corpus(self, setting_a):
        """n_samples=1 exercises the smallest FFBS stack."""
        corpus = small_corpus(3)
        engine_batch = CounterfactualEngine(
            paper_veritas_config(), n_samples=1, seed=9
        )
        engine_serial = CounterfactualEngine(
            paper_veritas_config(), n_samples=1, seed=9, use_batch=False
        )
        assert_prepared_equal(
            engine_batch.prepare_corpus(corpus, setting_a),
            engine_serial.prepare_corpus(corpus, setting_a),
        )

    def test_mixed_grid_corpus(self, setting_a):
        """Traces on different boundary grids split into deployment groups
        (the odd one out deploys serially) and still match the serial path."""
        corpus = small_corpus(4)
        rng = np.random.default_rng(3)
        corpus.append(
            PiecewiseConstantTrace.from_uniform(rng.uniform(3.0, 8.0, 100), 4.0)
        )
        engine_batch = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=1
        )
        engine_serial = CounterfactualEngine(
            paper_veritas_config(), n_samples=3, seed=1, use_batch=False
        )
        assert_prepared_equal(
            engine_batch.prepare_corpus(corpus, setting_a),
            engine_serial.prepare_corpus(corpus, setting_a),
        )

    def test_kernel_tiers_prepare_identically(self, setting_a):
        """Setting-A deployment runs through the selected replay-kernel tier
        too; every tier must produce the same ``PreparedCorpus`` bit for bit
        (``compiled`` degrades to ``scratch`` when no backend is buildable,
        which preserves the contract)."""
        corpus = small_corpus(3)
        want = CounterfactualEngine(
            paper_veritas_config(), n_samples=2, seed=4, kernel="analytic"
        ).prepare_corpus(corpus, setting_a)
        for kernel in ("scratch", "compiled"):
            got = CounterfactualEngine(
                paper_veritas_config(), n_samples=2, seed=4, kernel=kernel
            ).prepare_corpus(corpus, setting_a)
            assert_prepared_equal(got, want)

    def test_abduction_tiers_prepare_identically(self, setting_a):
        """Abduction kernel tiers (PR 9): ``reference`` and ``numpy`` are
        bit-identical by contract; ``compiled`` keeps integer outputs
        (Viterbi anchors, FFBS draws) bit-identical so the prepared corpus
        — sampled traces and replay metrics — comes out identical too, the
        float posteriors differing only inside rtol=1e-12."""
        corpus = small_corpus(3)
        want = CounterfactualEngine(
            paper_veritas_config(), n_samples=2, seed=4
        ).prepare_corpus(corpus, setting_a)
        for abduction_kernel in ("reference", "compiled"):
            got = CounterfactualEngine(
                paper_veritas_config(),
                n_samples=2,
                seed=4,
                abduction_kernel=abduction_kernel,
            ).prepare_corpus(corpus, setting_a)
            assert_prepared_equal(got, want)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_pooled_prepare_matches_serial(self, setting_a):
        """Workers batch within their shard; pooled output is bit-identical."""
        corpus = small_corpus(5)
        engine = CounterfactualEngine(paper_veritas_config(), n_samples=3, seed=2)
        serial = engine.prepare_corpus(corpus, setting_a)
        pooled = engine.prepare_corpus(corpus, setting_a, n_workers=3)
        assert_prepared_equal(pooled, serial)
