"""Tests for the :mod:`repro.analysis` lint engine (``repro lint``).

Three layers:

* fixture tests — every registered rule fires exactly once on its
  known-bad snippet under ``tests/fixtures/lint/``;
* seeded-drift tests — a copy of a *live* kernel module with one
  argument renamed must trip the kernel-mirror rules (the scenario the
  engine exists for);
* driver/CLI tests — suppressions, severity gating, exit codes, JSON.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.cparse import CParam, CParseError, parse_cdef, parse_params
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"

RULE_IDS = [rule.id for rule in all_rules()]

KERNEL_MODULES = [
    SRC / "repro" / "tcp" / "_compiled.py",
    SRC / "repro" / "abr" / "_decisions.py",
    SRC / "repro" / "player" / "_fused.py",
    SRC / "repro" / "core" / "_kernels.py",
]


def fires(source: str, rule_id: str, path: str = "fixture.py"):
    return [f for f in lint_source(source, path) if f.rule_id == rule_id]


class TestRegistry:
    def test_rules_registered(self):
        assert len(RULE_IDS) >= 15
        assert len(set(RULE_IDS)) == len(RULE_IDS)
        for rule_id in RULE_IDS:
            assert re.fullmatch(r"[A-Z]+\d+", rule_id), rule_id

    def test_rules_documented(self):
        for rule in all_rules():
            assert rule.description
            assert rule.severity in (Severity.WARNING, Severity.ERROR)

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError, match="known rules"):
            get_rule("NOPE999")


class TestFixtures:
    """Each rule fires exactly once on its known-bad snippet."""

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_rule_fires_exactly_once(self, rule_id):
        fixture = FIXTURES / f"{rule_id.lower()}.py"
        assert fixture.is_file(), (
            f"every rule needs a fixture; missing {fixture.name}"
        )
        source = fixture.read_text(encoding="utf-8")
        found = fires(source, rule_id, str(fixture))
        assert len(found) == 1, (
            f"{rule_id} fired {len(found)} times on {fixture.name}: {found}"
        )

    def test_no_stale_fixtures(self):
        known = {f"{rule_id.lower()}.py" for rule_id in RULE_IDS}
        on_disk = {p.name for p in FIXTURES.glob("*.py")}
        assert on_disk <= known, f"fixtures without a rule: {on_disk - known}"


class TestCleanTree:
    def test_lint_clean_tree(self):
        """``repro lint src/`` is clean at HEAD — errors AND warnings."""
        result = lint_paths([SRC])
        assert result.files_checked > 50
        assert result.findings == [], render_text(result)
        assert result.exit_code == 0


class TestSeededKernelDrift:
    """The kernel-mirror rules catch real drift seeded into live modules."""

    @staticmethod
    def _rename_first_mirror_param(source: str) -> str:
        match = re.search(r"def _\w+_mirror\(\s*(\w+)", source)
        assert match is not None
        name = match.group(1)
        start, end = match.span(1)
        return source[:start] + name + "_renamed" + source[end:]

    @pytest.mark.parametrize(
        "module", KERNEL_MODULES, ids=lambda p: p.stem.lstrip("_")
    )
    def test_km104_catches_renamed_mirror_argument(self, module):
        source = module.read_text(encoding="utf-8")
        assert fires(source, "KM104", str(module)) == []
        seeded = self._rename_first_mirror_param(source)
        found = fires(seeded, "KM104", str(module))
        assert found, "renaming a mirror argument must trip KM104"
        assert "not declared in _CDEF" in found[0].message

    def test_km103_catches_dtype_drift(self):
        source = (SRC / "repro" / "tcp" / "_compiled.py").read_text()
        seeded = source.replace('fb("double[]", sizes)', 'fb("long long[]", sizes)')
        assert seeded != source
        found = fires(seeded, "KM103")
        assert found and "declared double *" in found[0].message

    def test_km102_catches_c_source_drift(self):
        source = (SRC / "repro" / "tcp" / "_compiled.py").read_text()
        # Rename a parameter in the C *definition* (followed by "{") only;
        # the cdef declaration (followed by ";") keeps the original name.
        match = re.search(r"long long download_chunk\([^)]*\)[ \t\n]*\{", source)
        assert match is not None
        block = match.group(0)
        seeded = source.replace(block, re.sub(r"\brtt\b", "rtt_s", block, count=1), 1)
        assert seeded != source
        found = fires(seeded, "KM102")
        assert found and "disagrees with _CDEF" in found[0].message

    def test_kernel_modules_are_in_scope(self):
        """All four kernel modules parse as kernel modules (have a _CDEF)."""
        from repro.analysis.rules.kernel_mirror import _analyze
        import ast

        for module in KERNEL_MODULES:
            parsed = _analyze(ast.parse(module.read_text()))
            assert parsed is not None, module
            assert parsed.cdef_error is None
            assert parsed.functions and parsed.dispatchers


class TestSuppressions:
    SOURCE = "import textwrap{comment}\n\n\ndef double(x):\n    return 2 * x\n"

    def test_named_suppression(self):
        src = self.SOURCE.format(comment="  # repro: ignore[HYG604]")
        assert fires(src, "HYG604") == []

    def test_bare_suppression(self):
        src = self.SOURCE.format(comment="  # repro: ignore")
        assert fires(src, "HYG604") == []

    def test_other_rule_suppression_does_not_apply(self):
        src = self.SOURCE.format(comment="  # repro: ignore[KM101]")
        assert len(fires(src, "HYG604")) == 1

    def test_unsuppressed_fires(self):
        assert len(fires(self.SOURCE.format(comment=""), "HYG604")) == 1


class TestDriver:
    def test_syntax_error_is_a_finding(self):
        found = lint_source("def broken(:\n", "bad.py")
        assert len(found) == 1
        assert found[0].rule_id == "SYNTAX"
        assert found[0].severity is Severity.ERROR

    def test_warnings_do_not_gate(self, tmp_path):
        target = tmp_path / "warn_only.py"
        target.write_text(
            "def f(fn):\n    try:\n        fn()\n"
            "    except Exception:\n        pass\n"
        )
        result = lint_paths([target])
        assert result.warnings and not result.errors
        assert result.exit_code == 0

    def test_skips_cache_dirs(self, tmp_path):
        (tmp_path / "_ccache").mkdir()
        (tmp_path / "_ccache" / "junk.py").write_text("def broken(:\n")
        (tmp_path / "ok.py").write_text("X = 1\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 1
        assert result.findings == []

    def test_render_json_roundtrip(self):
        result = lint_paths([FIXTURES / "hyg603.py"])
        payload = json.loads(render_json(result))
        assert payload["files_checked"] == 1
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "HYG603"
        line = result.findings[0]
        assert f"{line.path}:{line.line}:{line.col}:" in render_text(result)


class TestCli:
    def test_lint_clean_src_exits_zero(self, capsys):
        assert cli_main(["lint", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_lint_fixture_exits_one(self, capsys):
        assert cli_main(["lint", str(FIXTURES / "hyg603.py")]) == 1
        assert "HYG603" in capsys.readouterr().out

    def test_lint_json(self, capsys):
        code = cli_main(["lint", "--json", str(FIXTURES / "hyg603.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_lint_rule_filter(self, capsys):
        fixture = str(FIXTURES / "km101.py")
        assert cli_main(["lint", "--rules", "HYG604", fixture]) == 0
        assert cli_main(["lint", "--rules", "KM101", fixture]) == 1
        capsys.readouterr()

    def test_lint_unknown_rule(self, capsys):
        assert cli_main(["lint", "--rules", "NOPE999", str(SRC)]) == 2
        assert "known rules" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out


class TestCParse:
    def test_parse_params(self):
        params = parse_params("long long n, const double *out")
        assert params == [
            CParam("long long", "n", False),
            CParam("double", "out", True),
        ]

    def test_parse_params_void(self):
        assert parse_params(" void ") == []

    def test_parse_params_rejects_unnamed(self):
        with pytest.raises(CParseError):
            parse_params("double *")

    def test_parse_cdef_requires_functions(self):
        with pytest.raises(CParseError):
            parse_cdef("typedef int x;")

    def test_parse_cdef_live_modules(self):
        for module in KERNEL_MODULES:
            source = module.read_text(encoding="utf-8")
            match = re.search(r'_CDEF = """(.*?)"""', source, re.S)
            assert match is not None, module
            functions = parse_cdef(match.group(1))
            assert functions
            for params in functions.values():
                assert any(p.pointer for p in params)


class TestToolingConfig:
    """The generic layer on top of `repro lint`: ruff + mypy --strict.

    Neither tool ships in the offline runtime image (CI installs them in
    the static-analysis job), so the execution tests skip gracefully
    when the tool is absent and only the configuration is asserted
    unconditionally.
    """

    def test_pyproject_configures_ruff_and_mypy(self):
        import tomllib

        data = tomllib.loads(
            (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        )
        ruff = data["tool"]["ruff"]
        assert ruff["extend-exclude"] == ["tests/fixtures"]
        assert "F" in ruff["lint"]["select"]
        mypy = data["tool"]["mypy"]
        assert mypy["strict"] is True
        assert "src/repro/analysis" in mypy["files"]
        # Every allowlisted path must exist — a vanished entry would make
        # the strict gate silently cover nothing.
        for entry in mypy["files"]:
            assert (REPO_ROOT / entry).exists(), entry

    def test_mypy_strict_allowlist(self):
        import subprocess
        import sys

        pytest.importorskip("mypy")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--strict"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_ruff_clean_on_analysis_package(self):
        import subprocess
        import sys

        pytest.importorskip("ruff")
        proc = subprocess.run(
            [sys.executable, "-m", "ruff", "check", "src/repro/analysis"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
