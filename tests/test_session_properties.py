"""End-to-end property-based tests on the streaming session simulator.

Hypothesis drives random (bandwidth, ABR, buffer) combinations through a
full session and asserts the physical invariants that must hold for *any*
configuration — the strongest guard against simulator accounting bugs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    SessionConfig,
    StreamingSession,
    constant_trace,
    make_abr,
    random_walk_trace,
)
from repro.util import transfer_bytes
from repro.video import short_video

_VIDEO = short_video(duration_s=60.0, seed=9)

abr_names = st.sampled_from(["mpc", "bba", "bola", "rate"])
bandwidths = st.floats(min_value=0.3, max_value=20.0)
buffers = st.floats(min_value=2.5, max_value=40.0)


@given(abr=abr_names, mbps=bandwidths, cap=buffers)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_session_invariants_hold_for_any_configuration(abr, mbps, cap):
    trace = constant_trace(mbps, 100_000.0)
    config = SessionConfig(buffer_capacity_s=cap)
    log = StreamingSession(_VIDEO, make_abr(abr), trace, config).run()

    # One record per chunk, monotone in time, positive durations.
    assert log.n_chunks == _VIDEO.n_chunks
    starts = log.start_times_s()
    ends = log.end_times_s()
    assert np.all(ends > starts)
    assert np.all(starts[1:] >= ends[:-1] - 1e-9)

    # No download can beat the link: duration >= bytes / link rate.
    for record in log.records:
        floor = record.size_bytes / transfer_bytes(mbps, 1.0)
        assert record.download_time_s >= floor - 1e-9
        assert record.throughput_mbps <= mbps + 1e-9

    # Buffer accounting: never negative, capped at request time; total
    # rebuffering equals the per-chunk sum.
    for record in log.records:
        assert -1e-9 <= record.buffer_before_s <= cap + 1e-6
        assert record.buffer_after_s >= 0.0
    assert sum(r.rebuffer_s for r in log.records) == pytest.approx(
        log.total_rebuffer_s, abs=1e-6
    )

    # Wall-clock identity: the last chunk cannot arrive after playback of
    # everything before it plus stalls plus the startup delay.
    playback = log.n_chunks * log.chunk_duration_s
    assert ends[-1] <= log.startup_time_s + playback + log.total_rebuffer_s + 1e-6

    # Qualities within the ladder.
    qualities = log.qualities()
    assert qualities.min() >= 0
    assert qualities.max() < _VIDEO.n_qualities


@given(
    mbps=st.floats(min_value=0.5, max_value=10.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_random_abr_sessions_well_formed(mbps, seed):
    trace = constant_trace(mbps, 100_000.0)
    abr = make_abr("random", seed=seed)
    log = StreamingSession(_VIDEO, abr, trace, SessionConfig()).run()
    assert log.n_chunks == _VIDEO.n_chunks
    assert np.all(log.download_times_s() > 0)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_sessions_deterministic_given_inputs(seed):
    """The simulator itself is deterministic: same inputs, same log."""
    trace = random_walk_trace(5.0, 600.0, seed=seed, low=1.0, high=9.0)
    log_a = StreamingSession(_VIDEO, make_abr("mpc"), trace, SessionConfig()).run()
    log_b = StreamingSession(_VIDEO, make_abr("mpc"), trace, SessionConfig()).run()
    assert np.array_equal(log_a.qualities(), log_b.qualities())
    assert np.allclose(log_a.end_times_s(), log_b.end_times_s())


@given(
    mbps=st.floats(min_value=0.5, max_value=15.0),
    abr=abr_names,
)
@settings(max_examples=25, deadline=None)
def test_abduction_never_sees_impossible_states(mbps, abr):
    """Abduction on any session yields finite, in-grid results."""
    from repro import VeritasAbduction, paper_veritas_config

    trace = constant_trace(mbps, 100_000.0)
    log = StreamingSession(_VIDEO, make_abr(abr), trace, SessionConfig()).run()
    post = VeritasAbduction(paper_veritas_config(max_capacity_mbps=16.0)).solve(log)
    caps = post.map_capacities_mbps()
    assert np.all(caps >= 0.0)
    assert np.all(caps <= 16.0)
    assert np.isfinite(post.log_likelihood)
    gamma = post.smoothing.gamma
    assert np.allclose(gamma.sum(axis=1), 1.0)
