"""Tests for TCP state tracking and slow-start restart."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import (
    INIT_CWND_SEGMENTS,
    MutableTCPState,
    TCPStateSnapshot,
    apply_slow_start_restart,
)


def make_snapshot(**overrides) -> TCPStateSnapshot:
    defaults = dict(
        cwnd_segments=40,
        ssthresh_segments=1 << 20,
        srtt_s=0.08,
        min_rtt_s=0.08,
        rto_s=0.25,
        time_since_last_send_s=0.0,
    )
    defaults.update(overrides)
    return TCPStateSnapshot(**defaults)


class TestSnapshot:
    def test_round_trip_dict(self):
        snap = make_snapshot()
        assert TCPStateSnapshot.from_dict(snap.to_dict()) == snap

    def test_rejects_zero_cwnd(self):
        with pytest.raises(ValueError):
            make_snapshot(cwnd_segments=0)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            make_snapshot(time_since_last_send_s=-1.0)

    def test_rejects_nonpositive_rtt(self):
        with pytest.raises(ValueError):
            make_snapshot(min_rtt_s=0.0)

    def test_rejects_nonpositive_rto(self):
        with pytest.raises(ValueError):
            make_snapshot(rto_s=0.0)


class TestSlowStartRestart:
    def test_no_restart_when_gap_small(self):
        cwnd, ssthresh, fired = apply_slow_start_restart(100, 64, 0.1, 0.25)
        assert (cwnd, ssthresh, fired) == (100, 64, False)

    def test_no_restart_when_cwnd_at_floor(self):
        cwnd, ssthresh, fired = apply_slow_start_restart(
            INIT_CWND_SEGMENTS, 64, 10.0, 0.25
        )
        assert fired is False
        assert cwnd == INIT_CWND_SEGMENTS

    def test_halves_once_per_rto(self):
        # gap of ~2.2 RTOs halves twice: 100 -> 50 -> 25.
        cwnd, _, fired = apply_slow_start_restart(100, 64, 0.55, 0.25)
        assert fired is True
        assert cwnd == 25

    def test_floors_at_restart_window(self):
        cwnd, _, _ = apply_slow_start_restart(100, 64, 100.0, 0.25)
        assert cwnd == INIT_CWND_SEGMENTS

    def test_ssthresh_raised_to_three_quarters(self):
        # After decay to 16, ssthresh = max(old, 16>>1 + 16>>2) = max(2, 12).
        cwnd, ssthresh, _ = apply_slow_start_restart(64, 2, 0.6, 0.25)
        assert cwnd == 16
        assert ssthresh == (cwnd >> 1) + (cwnd >> 2)

    def test_ssthresh_never_decreases(self):
        _, ssthresh, _ = apply_slow_start_restart(64, 1000, 0.6, 0.25)
        assert ssthresh == 1000

    @given(
        cwnd=st.integers(min_value=1, max_value=10_000),
        ssthresh=st.integers(min_value=2, max_value=10_000),
        gap=st.floats(min_value=0.0, max_value=100.0),
        rto=st.floats(min_value=0.05, max_value=2.0),
    )
    def test_invariants_property(self, cwnd, ssthresh, gap, rto):
        new_cwnd, new_ssthresh, fired = apply_slow_start_restart(
            cwnd, ssthresh, gap, rto
        )
        assert new_cwnd >= min(cwnd, INIT_CWND_SEGMENTS)
        assert new_cwnd <= cwnd
        assert new_ssthresh >= ssthresh or new_ssthresh >= 2
        if not fired:
            assert (new_cwnd, new_ssthresh) == (cwnd, ssthresh)


class TestMutableState:
    def test_rto_before_first_sample_is_one_second(self):
        state = MutableTCPState()
        assert state.rto_s == 1.0

    def test_observe_rtt_sets_srtt(self):
        state = MutableTCPState()
        state.observe_rtt(0.08)
        assert state.srtt_s == pytest.approx(0.08)
        assert state.min_rtt_s == pytest.approx(0.08)

    def test_min_rtt_tracks_minimum(self):
        state = MutableTCPState()
        state.observe_rtt(0.1)
        state.observe_rtt(0.05)
        state.observe_rtt(0.2)
        assert state.min_rtt_s == pytest.approx(0.05)

    def test_rto_has_floor(self):
        state = MutableTCPState()
        for _ in range(100):
            state.observe_rtt(0.001)
        assert state.rto_s >= 0.2

    def test_observe_rejects_nonpositive(self):
        state = MutableTCPState()
        with pytest.raises(ValueError):
            state.observe_rtt(0.0)

    def test_snapshot_gap_computation(self):
        state = MutableTCPState(last_send_time_s=10.0)
        state.observe_rtt(0.08)
        snap = state.snapshot(12.5)
        assert snap.time_since_last_send_s == pytest.approx(2.5)

    def test_snapshot_clamps_negative_gap(self):
        state = MutableTCPState(last_send_time_s=10.0)
        state.observe_rtt(0.08)
        snap = state.snapshot(9.0)
        assert snap.time_since_last_send_s == 0.0

    def test_srtt_converges_to_constant_rtt(self):
        state = MutableTCPState()
        for _ in range(200):
            state.observe_rtt(0.08)
        assert state.srtt_s == pytest.approx(0.08, rel=1e-6)
        assert state.rttvar_s == pytest.approx(0.0, abs=1e-3)
