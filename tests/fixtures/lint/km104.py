"""Fixture: the mirror renamed a parameter the _CDEF still declares.

The mirror takes ``res`` where the native kernel declares ``out`` —
exactly one KM104 finding (the drift KM rules exist to catch).
"""

import repro.util.compiled as compiled

_ = compiled

FORCE_PYTHON = False

_CDEF = """
long long scale(long long n, double *out);
"""

_C_SOURCE = """
long long scale(long long n, double *out) {
    for (long long i = 0; i < n; i++) out[i] *= 2.0;
    return 0;
}
"""


def _scale_mirror(res):
    for i in range(res.shape[0]):
        res[i] *= 2.0
    return 0


def scale(out, lib=None, fb=None):
    if not FORCE_PYTHON and lib is not None:
        return lib.scale(out.shape[0], fb("double[]", out))
    return _scale_mirror(out)
