"""Fixture: ambient entropy in an opted-in kernel module."""

# repro: kernel-module

import numpy as np


def jitter(values):
    noise = np.random.standard_normal(values.shape[0])
    return values + noise
