"""Fixture: a bare except clause."""


def swallow(fn):
    try:
        return fn()
    except:
        return None
