"""Fixture: a compiler flag list missing the IEEE-strictness pins."""

MY_CC_FLAGS = ["-O2", "-fPIC", "-shared"]
