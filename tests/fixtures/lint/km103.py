"""Fixture: the cc-backend call passes the wrong buffer dtype.

``out`` is declared ``double *`` but the dispatcher wraps it as
``fb("long long[]", ...)`` — exactly one KM103 finding.
"""

import repro.util.compiled as compiled

_ = compiled

FORCE_PYTHON = False

_CDEF = """
long long scale(long long n, double *out);
"""

_C_SOURCE = """
long long scale(long long n, double *out) {
    for (long long i = 0; i < n; i++) out[i] *= 2.0;
    return 0;
}
"""


def _scale_mirror(out):
    for i in range(out.shape[0]):
        out[i] *= 2.0
    return 0


def scale(out, lib=None, fb=None):
    if not FORCE_PYTHON and lib is not None:
        return lib.scale(out.shape[0], fb("long long[]", out))
    return _scale_mirror(out)
