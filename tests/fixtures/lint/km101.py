"""Fixture: _CDEF declares a function that has no Python dispatcher."""

import repro.util.compiled as compiled

_ = compiled

_CDEF = """
long long orphan_kernel(long long n, double *out);
"""
