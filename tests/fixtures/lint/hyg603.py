"""Fixture: a mutable default argument."""


def append(item, bucket=[]):
    bucket.append(item)
    return bucket
