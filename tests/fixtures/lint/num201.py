"""Fixture: reassociating reduction inside a jitted kernel body."""

from repro.util.compiled import maybe_jit


@maybe_jit(cache=True)
def total(values):
    return sum(values)
