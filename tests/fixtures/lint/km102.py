"""Fixture: the embedded C definition disagrees with the _CDEF declaration.

The C transcription renames ``out`` to ``res``; everything else is
consistent, so exactly one KM102 finding fires.
"""

import repro.util.compiled as compiled

_ = compiled

FORCE_PYTHON = False

_CDEF = """
long long scale(long long n, double *out);
"""

_C_SOURCE = """
long long scale(long long n, double *res) {
    for (long long i = 0; i < n; i++) res[i] *= 2.0;
    return 0;
}
"""


def _scale_mirror(out):
    for i in range(out.shape[0]):
        out[i] *= 2.0
    return 0


def scale(out, lib=None, fb=None):
    if not FORCE_PYTHON and lib is not None:
        return lib.scale(out.shape[0], fb("double[]", out))
    return _scale_mirror(out)
