"""Fixture: a broad exception handler that silently drops the failure."""


def ignore_errors(fn):
    try:
        fn()
    except Exception:
        pass
