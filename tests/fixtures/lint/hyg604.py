"""Fixture: a module-level binding that nothing references."""

import textwrap


def double(x):
    return 2 * x
