"""Fixture: module-global mutation inside a pool worker."""

_CACHE = None


# repro: pool-worker
def warm(task):
    global _CACHE
    _CACHE = task
    return task
