"""Fixture: a dispatcher that never consults FORCE_PYTHON.

Without the hook the parity suites cannot force the mirror path —
exactly one KM105 finding.
"""

import repro.util.compiled as compiled

_ = compiled

_CDEF = """
long long scale(long long n, double *out);
"""

_C_SOURCE = """
long long scale(long long n, double *out) {
    for (long long i = 0; i < n; i++) out[i] *= 2.0;
    return 0;
}
"""


def _scale_mirror(out):
    for i in range(out.shape[0]):
        out[i] *= 2.0
    return 0


def scale(out, lib=None, fb=None):
    if lib is not None:
        return lib.scale(out.shape[0], fb("double[]", out))
    return _scale_mirror(out)
