"""Fixture: a kernel module building outside repro.util.compiled."""

_CDEF = """
long long rogue(long long n, double *out);
"""
