"""Fixture: NumPy allocation inside a scratch-pragma function."""

import numpy as np


def refill(buf):  # repro: scratch
    tmp = np.zeros(buf.shape[0])
    buf[:] = tmp
    return buf
