"""Tests for posterior diagnostics and EM transition learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    VeritasAbduction,
    VeritasConfig,
    constant_trace,
    paper_veritas_config,
    random_walk_trace,
)
from repro.core import diagnose_posterior, learn_transition_matrix
from repro.video import short_video


@pytest.fixture(scope="module")
def biased_posterior():
    """A session with both sharp (big-chunk) and flat (small-chunk) regions."""
    video = short_video(duration_s=180.0, seed=5)
    trace = random_walk_trace(
        6.0, 900.0, seed=23, low=1.5, high=9.0, step_mbps=1.0,
        dip_prob=0.08, dip_range_mbps=(1.2, 2.0),
    )
    log = StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
    return VeritasAbduction(paper_veritas_config()).solve(log)


class TestDiagnostics:
    def test_shapes_and_ranges(self, biased_posterior):
        report = diagnose_posterior(biased_posterior)
        assert len(report.chunks) == biased_posterior.problem.n_chunks
        assert 0.0 <= report.uncertain_fraction <= 1.0
        assert report.max_entropy_bits >= report.mean_entropy_bits >= 0.0
        for chunk in report.chunks:
            assert chunk.interval_low_mbps <= chunk.interval_high_mbps
            assert chunk.entropy_bits >= 0.0

    def test_credible_interval_mass_monotone(self, biased_posterior):
        narrow = diagnose_posterior(biased_posterior, credible_mass=0.5)
        wide = diagnose_posterior(biased_posterior, credible_mass=0.99)
        for a, b in zip(narrow.chunks, wide.chunks):
            assert a.interval_width_mbps <= b.interval_width_mbps + 1e-9

    def test_uncertain_regions_contiguous(self, biased_posterior):
        report = diagnose_posterior(biased_posterior, width_threshold_mbps=1.0)
        regions = report.uncertain_regions()
        for start, end in regions:
            assert start <= end
        # Regions are ordered and disjoint.
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 <= s2

    def test_validation(self, biased_posterior):
        with pytest.raises(ValueError):
            diagnose_posterior(biased_posterior, credible_mass=0.0)
        with pytest.raises(ValueError):
            diagnose_posterior(biased_posterior, width_threshold_mbps=0.0)

    def test_small_chunks_more_uncertain_than_large(self):
        """The paper's §4.2 observation, quantified: a session of tiny
        chunks has wider capacity intervals than one of large chunks."""
        video = short_video(duration_s=120.0, seed=5)
        trace = constant_trace(8.0, 2000.0)

        class FixedQuality(MPCAlgorithm):
            def __init__(self, q):
                super().__init__()
                self._q = q

            def choose_quality(self, context):
                return self._q

        reports = {}
        for label, q in [("small", 0), ("large", video.n_qualities - 1)]:
            log = StreamingSession(
                video, FixedQuality(q), trace, SessionConfig()
            ).run()
            post = VeritasAbduction(paper_veritas_config()).solve(log)
            reports[label] = diagnose_posterior(post)
        assert (
            reports["small"].mean_entropy_bits
            > reports["large"].mean_entropy_bits
        )


class TestEM:
    @pytest.fixture(scope="class")
    def logs(self):
        video = short_video(duration_s=120.0, seed=6)
        out = []
        for seed, mean in [(1, 4.0), (2, 6.0)]:
            trace = random_walk_trace(mean, 600.0, seed=seed, low=2.0, high=9.0)
            out.append(
                StreamingSession(video, MPCAlgorithm(), trace, SessionConfig()).run()
            )
        return out

    def test_result_is_stochastic_matrix(self, logs):
        result = learn_transition_matrix(logs, iterations=2)
        assert np.allclose(result.matrix.sum(axis=1), 1.0)
        assert np.all(result.matrix >= 0)

    def test_likelihood_not_decreasing_materially(self, logs):
        result = learn_transition_matrix(logs, iterations=3)
        lls = result.log_likelihoods
        assert len(lls) >= 2
        # EM on the unit-gap subset plus smoothing: allow tiny wobble but
        # the final likelihood must not be materially worse than the start.
        assert lls[-1] >= lls[0] - 5.0

    def test_learning_improves_on_mismatched_prior(self, logs):
        """Starting from a memoryless prior, EM should recover most of the
        likelihood gap to the hand-tuned tridiagonal prior."""
        uniform_cfg = VeritasConfig(transition_kind="uniform")
        before = learn_transition_matrix(logs, uniform_cfg, iterations=1)
        after = learn_transition_matrix(logs, uniform_cfg, iterations=4)
        assert after.log_likelihoods[-1] >= before.log_likelihoods[-1]

    def test_validation(self, logs):
        with pytest.raises(ValueError):
            learn_transition_matrix([])
        with pytest.raises(ValueError):
            learn_transition_matrix(logs, iterations=0)
        with pytest.raises(ValueError):
            learn_transition_matrix(logs, smoothing=-1.0)

    def test_model_property(self, logs):
        result = learn_transition_matrix(logs, iterations=1)
        assert result.model.n_states == result.matrix.shape[0]
