"""Unit tests for repro.util: units, RNG helpers, statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    Summary,
    bytes_per_sec_to_mbps,
    cdf_at,
    child_rng,
    empirical_cdf,
    ensure_rng,
    mbps_to_bytes_per_sec,
    render_table,
    spawn_seeds,
    summarize,
    throughput_mbps,
    transfer_bytes,
)


class TestUnits:
    def test_mbps_round_trip(self):
        assert bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(7.25)) == pytest.approx(7.25)

    def test_one_mbps_is_125_kilobytes_per_second(self):
        assert mbps_to_bytes_per_sec(1.0) == pytest.approx(125_000)

    def test_throughput_simple(self):
        # 1 MB in 1 second = 8 Mb/s
        assert throughput_mbps(1_000_000, 1.0) == pytest.approx(8.0)

    def test_throughput_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            throughput_mbps(1000, 0.0)

    def test_throughput_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            throughput_mbps(1000, -1.0)

    def test_transfer_bytes(self):
        assert transfer_bytes(8.0, 1.0) == pytest.approx(1_000_000)

    @given(st.floats(min_value=1e-3, max_value=1e4))
    def test_round_trip_property(self, mbps):
        assert bytes_per_sec_to_mbps(mbps_to_bytes_per_sec(mbps)) == pytest.approx(mbps)

    @given(
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=1e-3, max_value=1e4),
    )
    def test_throughput_transfer_inverse(self, size, duration):
        mbps = throughput_mbps(size, duration)
        assert transfer_bytes(mbps, duration) == pytest.approx(size, rel=1e-9)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(7, 20)
        assert len(set(seeds)) == 20

    def test_spawn_seeds_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_child_rng_labels_differ(self):
        base = ensure_rng(3)
        a = child_rng(base, "alpha").integers(0, 10**6)
        base2 = ensure_rng(3)
        b = child_rng(base2, "beta").integers(0, 10**6)
        assert a != b


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_row_length(self):
        s = summarize([1.0, 2.0])
        assert len(s.row()) == 8

    def test_empirical_cdf_monotone(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)

    def test_cdf_at_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_at([], 1.0)

    def test_render_table_contains_cells(self):
        out = render_table(["a", "bb"], [[1.23456, "x"]], title="T")
        assert "T" in out
        assert "1.235" in out
        assert "x" in out

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_summary_bounds_property(self, values):
        s = summarize(values)
        assert s.minimum <= s.p10 <= s.median <= s.p90 <= s.maximum
        # The mean accumulates rounding error; allow one part in 1e12.
        span = max(abs(s.minimum), abs(s.maximum), 1e-300)
        tol = 1e-12 * span
        assert s.minimum - tol <= s.mean <= s.maximum + tol

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_cdf_range_property(self, values):
        xs, ps = empirical_cdf(values)
        assert ps[0] > 0
        assert ps[-1] == pytest.approx(1.0)
        assert np.all(np.diff(xs) >= 0)

    def test_summary_is_frozen(self):
        s = summarize([1.0])
        with pytest.raises(AttributeError):
            s.mean = 2.0  # type: ignore[misc]

    def test_summary_dataclass_fields(self):
        assert isinstance(summarize([1.0, 2.0]), Summary)
