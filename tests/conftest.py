"""Shared fixtures for the test suite.

Keeps the expensive objects (videos, corpora, session logs) session-scoped
so the full suite stays fast while still exercising realistic paths.
"""

from __future__ import annotations

import pytest

from repro import (
    MPCAlgorithm,
    SessionConfig,
    StreamingSession,
    VeritasAbduction,
    paper_veritas_config,
    random_walk_trace,
    short_video,
)


@pytest.fixture(scope="session")
def small_video():
    """A 2-minute video (60 chunks) — enough for HMM structure tests."""
    return short_video(duration_s=120.0, seed=3)


@pytest.fixture(scope="session")
def medium_video():
    """A 4-minute video used by integration tests."""
    return short_video(duration_s=240.0, seed=3)


@pytest.fixture(scope="session")
def gentle_trace():
    """A mild 5 Mbps random-walk trace, 400 s long."""
    return random_walk_trace(
        mean_mbps=5.0, duration=400.0, seed=10, low=2.0, high=9.0
    )


@pytest.fixture(scope="session")
def mpc_log(medium_video, gentle_trace):
    """A deployed-MPC session log over the gentle trace."""
    session = StreamingSession(
        medium_video, MPCAlgorithm(), gentle_trace, SessionConfig()
    )
    return session.run()


@pytest.fixture(scope="session")
def solved_posterior(mpc_log):
    """A Veritas posterior for the shared MPC log."""
    return VeritasAbduction(paper_veritas_config()).solve(mpc_log)
