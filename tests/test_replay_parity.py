"""Parity suite for the replay fast paths (PR 2).

Three layers each keep a scalar reference implementation alive; this suite
pins the fast paths to them bit for bit:

* ``PiecewiseConstantTrace.time_to_transfer`` (bisection over the
  cumulative-bytes integral) vs ``time_to_transfer_reference`` (interval
  walk),
* ``TCPConnection`` analytic kernel (interval-wise closed form) vs the
  per-RTT reference loop — including whole sessions under BBA/BOLA/MPC,
* ``CounterfactualEngine.evaluate_many`` over a prepared corpus vs
  back-to-back ``evaluate_corpus`` / per-trace ``evaluate_trace`` calls.

Scope note: bit-identity between fast path and reference is only
achievable because they share head/bookkeeping helpers
(``_transfer_prefix``, ``_grow_window``, ``_finish_fluid``), so these
parity tests pin the *search/stepping* logic, not the shared helpers.
Defects in the shared code are instead caught by the value-level tests
here (known closed-form answers) and in ``test_trace.py`` /
``test_tcp_connection.py`` (integral round-trips, session semantics).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.tcp.connection as connection_module
from repro import (
    CounterfactualEngine,
    change_abr,
    change_buffer,
    paper_corpus,
    paper_setting_a,
    paper_veritas_config,
)
from repro.causal.engine import run_setting
from repro.net.trace import PiecewiseConstantTrace
from repro.tcp.connection import TCPConnection
from repro.util.rng import spawn_seeds


def random_trace(
    rng: np.random.Generator,
    with_gaps: bool = True,
    trailing_positive: bool = False,
):
    """A random piecewise trace, optionally with zero-bandwidth intervals."""
    k = int(rng.integers(1, 14))
    bounds = np.cumsum(rng.uniform(0.05, 8.0, k + 1)) - 2.0
    vals = rng.uniform(0.0, 10.0, k)
    if with_gaps:
        vals[rng.random(k) < 0.3] = 0.0
    if vals[-1] == 0.0 and (trailing_positive or rng.random() < 0.7):
        vals[-1] = float(rng.uniform(0.5, 5.0))
    return PiecewiseConstantTrace(bounds, vals)


class TestTimeToTransferParity:
    def test_randomized_bit_identical(self):
        rng = np.random.default_rng(7)
        checked = 0
        for _ in range(1500):
            tr = random_trace(rng)
            start = float(rng.uniform(tr.start_time - 5, tr.end_time + 5))
            size = float(10 ** rng.uniform(-2, 7))
            try:
                fast = tr.time_to_transfer(start, size)
                fast_err = None
            except RuntimeError:
                fast = fast_err = "stalled"
            try:
                ref = tr.time_to_transfer_reference(start, size)
                ref_err = None
            except RuntimeError:
                ref = ref_err = "stalled"
            assert fast_err == ref_err
            assert fast == ref  # bit-identical, no tolerance
            checked += 1
        assert checked == 1500

    def test_start_past_end_time(self):
        tr = PiecewiseConstantTrace([0.0, 10.0], [4.0])
        for start in (10.0, 25.0):
            fast = tr.time_to_transfer(start, 1e6)
            assert fast == tr.time_to_transfer_reference(start, 1e6)
            assert fast == pytest.approx(2.0)

    def test_sub_interval_transfer(self):
        tr = PiecewiseConstantTrace([0.0, 5.0, 10.0], [8.0, 2.0])
        size = 1e5  # finishes well inside the first interval
        fast = tr.time_to_transfer(1.0, size)
        assert fast == tr.time_to_transfer_reference(1.0, size)
        assert fast == pytest.approx(size / (8.0 * 1e6 / 8))

    def test_zero_gap_then_resume(self):
        tr = PiecewiseConstantTrace([0.0, 2.0, 6.0, 8.0], [4.0, 0.0, 4.0])
        size = tr.integrate_bytes(0.0, 7.0)
        fast = tr.time_to_transfer(0.0, size)
        assert fast == tr.time_to_transfer_reference(0.0, size)
        assert fast == pytest.approx(7.0, abs=1e-6)

    def test_trailing_zero_raises_in_both(self):
        tr = PiecewiseConstantTrace([0.0, 2.0], [0.0])
        with pytest.raises(RuntimeError):
            tr.time_to_transfer(0.0, 1e5)
        with pytest.raises(RuntimeError):
            tr.time_to_transfer_reference(0.0, 1e5)

    def test_zero_size_is_free(self):
        tr = PiecewiseConstantTrace([0.0, 2.0], [1.0])
        assert tr.time_to_transfer(0.5, 0.0) == 0.0
        assert tr.time_to_transfer_reference(0.5, 0.0) == 0.0


class TestDownloadKernelParity:
    def test_randomized_download_sequences(self):
        rng = np.random.default_rng(11)
        for _ in range(300):
            # Downloads over a trace that ends at zero bandwidth stall
            # forever (a RuntimeError in both kernels), so keep the tail
            # positive; interior zero-bandwidth gaps stay in play.
            tr = random_trace(rng, trailing_positive=True)
            rtt = float(rng.uniform(0.02, 0.3))
            fast = TCPConnection(tr, rtt_s=rtt, kernel="analytic")
            ref = TCPConnection(tr, rtt_s=rtt, kernel="reference")
            t = 0.0
            for _ in range(int(rng.integers(1, 7))):
                t += float(rng.uniform(0.0, 4.0))
                size = float(10 ** rng.uniform(3, 6.8))
                ra = fast.download(size, t)
                rb = ref.download(size, t)
                assert ra == rb  # dataclass equality: all fields bit-identical
                assert fast.state.cwnd_segments == ref.state.cwnd_segments
                assert fast.state.ssthresh_segments == ref.state.ssthresh_segments
                t = ra.end_time_s

    def test_unknown_kernel_rejected(self):
        tr = PiecewiseConstantTrace([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            TCPConnection(tr, kernel="warp-drive")

    @pytest.mark.parametrize("abr", ["bba", "bola", "mpc"])
    def test_full_session_logs_bit_identical(self, abr, monkeypatch):
        setting_a = paper_setting_a(seed=7)
        setting = change_abr(setting_a, abr)
        traces = paper_corpus(count=2, duration_s=500.0, seed=99)
        logs = {}
        for kernel in ("analytic", "reference"):
            monkeypatch.setattr(connection_module, "DEFAULT_KERNEL", kernel)
            logs[kernel] = [run_setting(setting, tr) for tr in traces]
        for log_fast, log_ref in zip(logs["analytic"], logs["reference"]):
            assert log_fast == log_ref  # SessionLog equality is field-exact


class TestPreparedCorpusParity:
    @pytest.fixture(scope="class")
    def fixtures(self):
        setting_a = paper_setting_a(seed=7)
        traces = paper_corpus(count=3, duration_s=500.0, seed=21)
        engine = CounterfactualEngine(paper_veritas_config(), n_samples=3, seed=5)
        return setting_a, traces, engine

    def test_evaluate_many_equals_evaluate_corpus(self, fixtures):
        setting_a, traces, engine = fixtures
        settings_b = [change_abr(setting_a, "bba"), change_buffer(setting_a, 30.0)]
        prepared = engine.prepare_corpus(traces, setting_a)
        many = engine.evaluate_many(prepared, settings_b)
        for setting_b, shared in zip(settings_b, many):
            solo = engine.evaluate_corpus(traces, setting_a, setting_b)
            assert shared.setting_b == solo.setting_b
            assert shared.per_trace == solo.per_trace  # exact equality

    def test_matches_per_trace_evaluate_trace(self, fixtures):
        setting_a, traces, engine = fixtures
        setting_b = change_abr(setting_a, "bba")
        seeds = spawn_seeds(5, len(traces))
        direct = [
            engine.evaluate_trace(i, tr, setting_a, setting_b, seed=s)
            for i, (tr, s) in enumerate(zip(traces, seeds))
        ]
        prepared = engine.prepare_corpus(traces, setting_a)
        shared = engine.evaluate_many(prepared, [setting_b])[0]
        assert shared.per_trace == direct

    def test_prepared_replay_is_deterministic(self, fixtures):
        setting_a, traces, engine = fixtures
        setting_b = change_abr(setting_a, "bola")
        prepared = engine.prepare_corpus(traces, setting_a)
        first = engine.evaluate_many(prepared, [setting_b])[0]
        second = engine.evaluate_many(prepared, [setting_b])[0]
        assert first.per_trace == second.per_trace

    def test_empty_inputs_rejected(self, fixtures):
        setting_a, traces, engine = fixtures
        with pytest.raises(ValueError):
            engine.prepare_corpus([], setting_a)
        prepared = engine.prepare_corpus(traces[:1], setting_a)
        with pytest.raises(ValueError):
            engine.evaluate_many(prepared, [])


class TestEngineKernelTiers:
    """``CounterfactualEngine(kernel=...)`` reaches the replay kernels and
    every tier answers causal queries identically (PR 6)."""

    @pytest.fixture(scope="class")
    def fixtures(self):
        setting_a = paper_setting_a(seed=7)
        traces = paper_corpus(count=2, duration_s=400.0, seed=31)
        return setting_a, traces

    def test_all_tiers_answer_identically(self, fixtures):
        setting_a, traces = fixtures
        settings_b = [change_abr(setting_a, "bba"), change_buffer(setting_a, 30.0)]
        results = {}
        for tier in ("analytic", "scratch", "compiled"):
            engine = CounterfactualEngine(
                paper_veritas_config(), n_samples=3, seed=5, kernel=tier
            )
            prepared = engine.prepare_corpus(traces, setting_a)
            results[tier] = engine.evaluate_many(prepared, settings_b)
        for tier in ("scratch", "compiled"):
            for got, want in zip(results[tier], results["analytic"]):
                assert got.per_trace == want.per_trace  # exact equality
