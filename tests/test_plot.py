"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import ascii_line_plot, ascii_scatter


class TestLinePlot:
    def test_renders_title_and_legend(self):
        out = ascii_line_plot(
            [0, 1, 2], {"gt": [1, 2, 3], "est": [1, 1, 2]}, title="T"
        )
        assert out.startswith("T")
        assert "* gt" in out
        assert "o est" in out

    def test_marks_present(self):
        out = ascii_line_plot([0, 1, 2, 3], {"s": [0, 1, 2, 3]})
        assert "*" in out

    def test_extremes_on_axis(self):
        out = ascii_line_plot([0, 10], {"s": [2.0, 8.0]})
        assert "8.00" in out
        assert "2.00" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_line_plot([0, 1], {"s": [5.0, 5.0]})
        assert "*" in out

    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], {"s": [1.0]})

    def test_validates_empty(self):
        with pytest.raises(ValueError):
            ascii_line_plot([], {"s": []})
        with pytest.raises(ValueError):
            ascii_line_plot([0], {})

    def test_validates_size(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], {"s": [1, 2]}, width=4)

    def test_line_count_matches_height(self):
        out = ascii_line_plot([0, 1], {"s": [1, 2]}, height=10, title="T")
        # title + legend + 10 canvas rows + axis + labels
        assert len(out.splitlines()) == 14


class TestScatter:
    def test_diagonal_reference(self):
        out = ascii_scatter([0, 5, 10], [0, 5, 10], diagonal=True)
        assert "." in out
        assert "*" in out

    def test_points_on_diagonal_overwrite_reference(self):
        out = ascii_scatter([0, 10], [0, 10], diagonal=True)
        # Corner cells are points, not reference dots.
        rows = out.splitlines()
        assert "*" in rows[1] or "*" in rows[-3]

    def test_validates_mismatched(self):
        with pytest.raises(ValueError):
            ascii_scatter([1, 2], [1])

    def test_validates_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter([], [])

    def test_handles_identical_points(self):
        out = ascii_scatter([3.0, 3.0], [3.0, 3.0])
        assert "*" in out

    def test_deterministic(self):
        a = ascii_scatter(np.arange(10), np.arange(10) ** 1.5)
        b = ascii_scatter(np.arange(10), np.arange(10) ** 1.5)
        assert a == b
