"""Fault-injection tests for the fault-tolerant corpus runtime.

Each test breaks the pipeline on purpose — a poisoned trace, a worker
killed mid-shard, a hang past the watchdog, a corrupted checkpoint — and
asserts the two contracts of :mod:`repro.runtime`:

1. the run completes, reporting every incident in the result's
   :class:`~repro.runtime.faults.FaultLog`, and
2. every surviving trace's answer is **bit-identical** to a clean run's
   (recovery re-executes with the same seeds, it never approximates).

Worker-side injection uses marker files plus ``os.getpid()`` guards: the
fork pool inherits a monkeypatched engine method whose sabotage fires only
in child processes and only while the marker exists, so the supervised
retry (fresh pool, marker consumed) succeeds deterministically.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from repro import (
    CounterfactualEngine,
    Setting,
    change_abr,
    change_buffer,
    make_abr,
    paper_veritas_config,
    random_walk_trace,
)
from repro.net import (
    PiecewiseConstantTrace,
    TraceValidationError,
    validate_corpus,
    validate_trace,
)
from repro.player import SessionConfig
from repro.runtime import CheckpointStore, FaultLog, SupervisorConfig, fingerprint
from repro.runtime.supervisor import run_supervised
from repro.video import short_video

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

HAVE_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")


def nan_trace(duration_s: float = 180.0) -> PiecewiseConstantTrace:
    """A trace that passes construction but poisons the replay kernels.

    The constructor's negativity check (``values < 0``) is False for NaN,
    so this slips through — exactly the gap ``validate_trace`` closes.
    """
    values = [5.0] * int(duration_s)
    values[3] = math.nan
    return PiecewiseConstantTrace.from_uniform(values, 1.0)


@pytest.fixture(scope="module")
def setting_a():
    return Setting(
        name="A",
        abr_factory=lambda: make_abr("bba"),
        config=SessionConfig(buffer_capacity_s=5.0, rtt_s=0.08),
        video=short_video(duration_s=60.0, seed=4),
    )


@pytest.fixture(scope="module")
def corpus():
    return [
        random_walk_trace(m, 180.0, seed=s, low=1.5, high=9.0, step_mbps=1.0)
        for m, s in [(4.0, 1), (6.0, 2), (5.0, 3)]
    ]


def make_engine(**kwargs) -> CounterfactualEngine:
    kwargs.setdefault("n_samples", 2)
    kwargs.setdefault("seed", 3)
    return CounterfactualEngine(paper_veritas_config(), **kwargs)


def assert_same_trace_answers(got, expected):
    """Exact (frozen-dataclass) equality of per-trace counterfactuals."""
    assert [t.trace_index for t in got] == [t.trace_index for t in expected]
    for a, b in zip(got, expected):
        assert a == b  # QoEMetrics are frozen dataclasses: float-exact


def assert_same_prepared(got, expected):
    assert [p.trace_index for p in got] == [p.trace_index for p in expected]
    for a, b in zip(got, expected):
        assert a.log_a.to_dict() == b.log_a.to_dict()
        assert a.setting_a_metrics == b.setting_a_metrics
        assert a.replay_horizon_s == b.replay_horizon_s
        assert np.array_equal(a.baseline.boundaries, b.baseline.boundaries)
        assert np.array_equal(a.baseline.values, b.baseline.values)
        assert len(a.samples) == len(b.samples)
        for sa, sb in zip(a.samples, b.samples):
            assert np.array_equal(sa.boundaries, sb.boundaries)
            assert np.array_equal(sa.values, sb.values)


# ---------------------------------------------------------------------------
# Input validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_nan_bandwidth_is_caught(self):
        diags = validate_trace(nan_trace())
        assert any(d.code == "non-finite-bandwidth" for d in diags)

    def test_clean_trace_has_no_diagnostics(self, corpus):
        assert not validate_trace(corpus[0])

    def test_validate_corpus_maps_by_index(self, corpus):
        bad = [corpus[0], nan_trace(), corpus[1]]
        diagnostics = validate_corpus(bad)
        assert set(diagnostics) == {1}

    def test_raise_policy_fails_loudly(self, corpus, setting_a):
        engine = make_engine(on_error="raise")
        with pytest.raises(TraceValidationError):
            engine.prepare_corpus([corpus[0], nan_trace()], setting_a)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            make_engine(on_error="retry")


# ---------------------------------------------------------------------------
# Per-trace isolation: skip / degrade
# ---------------------------------------------------------------------------
class TestTraceIsolation:
    def test_skip_poisoned_trace_bit_identical(self, corpus, setting_a):
        """Dropping trace 1 must not perturb traces 0 and 2.

        Seeds are indexed by original corpus position, so the run over
        [t0, poison, t2] must match a clean run over [t0, filler, t2]
        float for float on the survivors.
        """
        setting_b = change_abr(setting_a, "bola")
        poisoned = [corpus[0], nan_trace(), corpus[2]]
        clean = [corpus[0], corpus[1], corpus[2]]

        engine = make_engine(on_error="skip")
        result = engine.evaluate_corpus(poisoned, setting_a, setting_b)
        reference = make_engine().evaluate_corpus(clean, setting_a, setting_b)

        assert result.faults.skipped_trace_indices() == {1}
        fault = result.faults.traces[0]
        assert (fault.stage, fault.tier) == ("validate", "input")
        survivors = [t for t in reference.per_trace if t.trace_index != 1]
        assert_same_trace_answers(result.per_trace, survivors)

    def test_degrade_retries_on_reference_path(self, corpus, setting_a, monkeypatch):
        """A batch-path failure degrades to the scalar path, bit-identical."""
        reference = make_engine().prepare_corpus(corpus[:2], setting_a)

        engine = make_engine(on_error="degrade")

        def boom(*args, **kwargs):
            raise RuntimeError("batch abduction exploded")

        monkeypatch.setattr(engine.abduction, "solve_batch", boom)
        prepared = engine.prepare_corpus(corpus[:2], setting_a)

        assert_same_prepared(prepared.per_trace, reference.per_trace)
        shard_faults = [f for f in prepared.faults.traces if f.trace_index == -1]
        assert len(shard_faults) == 1
        assert not shard_faults[0].skipped
        assert shard_faults[0].error_type == "RuntimeError"

    def test_degrade_raises_when_reference_also_fails(
        self, corpus, setting_a, monkeypatch
    ):
        engine = make_engine(on_error="degrade")

        def boom(*args, **kwargs):
            raise RuntimeError("irrecoverable")

        monkeypatch.setattr(engine.abduction, "solve_batch", boom)
        monkeypatch.setattr(engine.abduction, "solve", boom)
        with pytest.raises(RuntimeError, match="irrecoverable"):
            engine.prepare_corpus(corpus[:2], setting_a)

    def test_replay_degrade_recovers_bit_identical(
        self, corpus, setting_a, monkeypatch
    ):
        setting_b = change_buffer(setting_a, 30.0)
        reference = make_engine().evaluate_corpus(corpus[:2], setting_a, setting_b)

        engine = make_engine(on_error="degrade")
        prepared = engine.prepare_corpus(corpus[:2], setting_a)
        original = CounterfactualEngine._replay_prepared

        def flaky(self, item, setting):
            raise RuntimeError("batch replay exploded")

        monkeypatch.setattr(CounterfactualEngine, "_replay_prepared", flaky)
        monkeypatch.setattr(
            CounterfactualEngine,
            "_replay_settings",
            lambda self, per_trace, settings: (_ for _ in ()).throw(
                RuntimeError("fused replay exploded")
            ),
        )
        result = engine.evaluate_many(prepared, [setting_b])[0]
        monkeypatch.setattr(CounterfactualEngine, "_replay_prepared", original)

        assert_same_trace_answers(result.per_trace, reference.per_trace)
        recovered = [f for f in result.faults.traces if f.trace_index >= 0]
        assert len(recovered) == 2
        assert all(not f.skipped and f.tier == "batch" for f in recovered)

    def test_replay_skip_drops_irrecoverable_trace(
        self, corpus, setting_a, monkeypatch
    ):
        setting_b = change_buffer(setting_a, 30.0)
        engine = make_engine(on_error="skip")
        prepared = engine.prepare_corpus(corpus[:2], setting_a)
        reference = make_engine().evaluate_many(
            make_engine().prepare_corpus(corpus[:2], setting_a), [setting_b]
        )[0]

        serial = CounterfactualEngine._replay_prepared_serial

        def boom_for_first(self, item, setting):
            if item.trace_index == 0:
                raise RuntimeError("trace 0 is cursed")
            return serial(self, item, setting)

        monkeypatch.setattr(
            CounterfactualEngine,
            "_replay_settings",
            lambda self, per_trace, settings: (_ for _ in ()).throw(
                RuntimeError("fused replay exploded")
            ),
        )
        monkeypatch.setattr(CounterfactualEngine, "_replay_prepared", boom_for_first)
        monkeypatch.setattr(
            CounterfactualEngine, "_replay_prepared_serial", boom_for_first
        )
        result = engine.evaluate_many(prepared, [setting_b])[0]

        assert [t.trace_index for t in result.per_trace] == [1]
        assert result.faults.skipped_trace_indices() == {0}
        assert_same_trace_answers(
            result.per_trace,
            [t for t in reference.per_trace if t.trace_index == 1],
        )


# ---------------------------------------------------------------------------
# Pool supervision
# ---------------------------------------------------------------------------
def _times_ten(task):
    return task * 10


def _sabotage_prepare(marker, mode):
    """Class-level wrapper: children crash/hang while ``marker`` exists."""
    parent = os.getpid()
    original = CounterfactualEngine._prepare_traces_safe

    def wrapper(self, *args, **kwargs):
        if os.getpid() != parent and marker.exists():
            try:
                marker.unlink()
            except OSError:
                pass  # a sibling got there first; sabotage anyway
            if mode == "kill":
                os._exit(1)
            time.sleep(60.0)
        return original(self, *args, **kwargs)

    return wrapper


@needs_fork
class TestPoolSupervision:
    def test_worker_death_recovers_bit_identical(
        self, corpus, setting_a, tmp_path, monkeypatch
    ):
        reference = make_engine().prepare_corpus(corpus, setting_a)
        marker = tmp_path / "kill-once"
        marker.touch()
        monkeypatch.setattr(
            CounterfactualEngine,
            "_prepare_traces_safe",
            _sabotage_prepare(marker, "kill"),
        )
        engine = make_engine()
        prepared = engine.prepare_corpus(corpus, setting_a, n_workers=2)

        assert_same_prepared(prepared.per_trace, reference.per_trace)
        assert len(prepared.faults.pool) == 1
        fault = prepared.faults.pool[0]
        assert fault.kind == "worker-death"
        assert fault.recovered == "pool-retry"

    def test_hung_worker_times_out_and_recovers(
        self, corpus, setting_a, tmp_path, monkeypatch
    ):
        reference = make_engine().prepare_corpus(corpus, setting_a)
        marker = tmp_path / "hang-once"
        marker.touch()
        monkeypatch.setattr(
            CounterfactualEngine,
            "_prepare_traces_safe",
            _sabotage_prepare(marker, "hang"),
        )
        engine = make_engine(shard_timeout_s=10.0)
        prepared = engine.prepare_corpus(corpus, setting_a, n_workers=2)

        assert_same_prepared(prepared.per_trace, reference.per_trace)
        kinds = {f.kind for f in prepared.faults.pool}
        assert "timeout" in kinds

    def test_irrecoverable_pool_falls_back_in_process(
        self, corpus, setting_a, tmp_path, monkeypatch
    ):
        reference = make_engine().prepare_corpus(corpus[:2], setting_a)
        parent = os.getpid()
        original = CounterfactualEngine._prepare_traces_safe

        def always_die(self, *args, **kwargs):
            if os.getpid() != parent:
                os._exit(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            CounterfactualEngine, "_prepare_traces_safe", always_die
        )
        engine = make_engine(max_retries=1, retry_backoff_s=0.0)
        prepared = engine.prepare_corpus(corpus[:2], setting_a, n_workers=2)

        assert_same_prepared(prepared.per_trace, reference.per_trace)
        assert prepared.faults.pool, "pool deaths must be reported"
        assert prepared.faults.pool[-1].recovered == "in-process"

    def test_run_supervised_preserves_task_order(self):
        log = FaultLog()
        results = run_supervised(
            _times_ten,
            [1, 2, 3],
            workers=2,
            config=SupervisorConfig(max_retries=0),
            fault_log=log,
        )
        assert results == [10, 20, 30]
        assert not log

    def test_supervisor_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_retries=-1)


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_skips_all_abduction(self, corpus, setting_a, tmp_path, monkeypatch):
        ckpt = tmp_path / "store"
        first = make_engine().prepare_corpus(
            corpus, setting_a, checkpoint_dir=ckpt
        )
        assert len(CheckpointStore(ckpt)) == len(corpus)

        engine = make_engine()

        def no_abduction(*args, **kwargs):
            raise AssertionError("resume must not re-run abduction")

        monkeypatch.setattr(engine.abduction, "solve", no_abduction)
        monkeypatch.setattr(engine.abduction, "solve_batch", no_abduction)
        resumed = engine.prepare_corpus(corpus, setting_a, checkpoint_dir=ckpt)

        assert_same_prepared(resumed.per_trace, first.per_trace)

    def test_resume_is_incremental(self, corpus, setting_a, tmp_path):
        ckpt = tmp_path / "store"
        make_engine().prepare_corpus(corpus[:2], setting_a, checkpoint_dir=ckpt)
        assert len(CheckpointStore(ckpt)) == 2
        full = make_engine().prepare_corpus(
            corpus, setting_a, checkpoint_dir=ckpt
        )
        assert len(CheckpointStore(ckpt)) == 3
        reference = make_engine().prepare_corpus(corpus, setting_a)
        assert_same_prepared(full.per_trace, reference.per_trace)

    def test_replays_from_checkpoint_are_bit_identical(
        self, corpus, setting_a, tmp_path
    ):
        setting_b = change_abr(setting_a, "bola")
        ckpt = tmp_path / "store"
        make_engine().prepare_corpus(corpus[:2], setting_a, checkpoint_dir=ckpt)
        resumed = make_engine().prepare_corpus(
            corpus[:2], setting_a, checkpoint_dir=ckpt
        )
        reference = make_engine().evaluate_corpus(corpus[:2], setting_a, setting_b)
        result = make_engine().evaluate_many(resumed, [setting_b])[0]
        assert_same_trace_answers(result.per_trace, reference.per_trace)

    def test_different_seed_misses_checkpoint(self, corpus, setting_a, tmp_path):
        ckpt = tmp_path / "store"
        make_engine(seed=3).prepare_corpus(
            corpus[:1], setting_a, checkpoint_dir=ckpt
        )
        make_engine(seed=4).prepare_corpus(
            corpus[:1], setting_a, checkpoint_dir=ckpt
        )
        # Different seed -> different fingerprint -> a second artifact.
        assert len(CheckpointStore(ckpt)) == 2

    def test_corrupt_checkpoint_recomputes(self, corpus, setting_a, tmp_path):
        ckpt = tmp_path / "store"
        first = make_engine().prepare_corpus(
            corpus[:1], setting_a, checkpoint_dir=ckpt
        )
        store = CheckpointStore(ckpt)
        (key,) = store.keys()
        store.path_for(key).write_bytes(b"not an npz")
        again = make_engine().prepare_corpus(
            corpus[:1], setting_a, checkpoint_dir=ckpt
        )
        assert_same_prepared(again.per_trace, first.per_trace)

    def test_fingerprint_is_content_addressed(self):
        a = fingerprint(["x", np.arange(4), 3])
        b = fingerprint(["x", np.arange(4), 3])
        c = fingerprint(["x", np.arange(4), 4])
        assert a == b != c


# ---------------------------------------------------------------------------
# Kernel degrade warning (satellite a)
# ---------------------------------------------------------------------------
class TestCompiledFallbackWarning:
    def test_warns_once_per_process(self, monkeypatch):
        from repro.net.trace import TraceBatch
        from repro.tcp import _compiled, connection

        monkeypatch.setattr(_compiled, "available", lambda: False)
        monkeypatch.setattr(connection, "_COMPILED_FALLBACK_WARNED", False)
        batch = TraceBatch(
            [PiecewiseConstantTrace.from_uniform([5.0, 5.0], 1.0)]
        )

        def build():
            return connection.BatchTCPConnection(
                batch, rtt_s=0.08, kernel="compiled"
            )

        with pytest.warns(RuntimeWarning, match="falling back"):
            conn = build()
        assert conn._tier == "scratch"

        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            build()  # second degrade must be silent


# ---------------------------------------------------------------------------
# Acceptance: everything at once
# ---------------------------------------------------------------------------
@needs_fork
class TestAcceptance:
    def test_poison_kill_and_hang_in_one_run(
        self, corpus, setting_a, tmp_path, monkeypatch
    ):
        """The ISSUE's acceptance scenario: a poisoned trace, a worker
        killed mid-shard and a hung worker in one corpus run — it must
        complete, report all three in the FaultLog, and stay bit-identical
        to serial on the surviving traces."""
        setting_b = change_abr(setting_a, "bola")
        poisoned = [corpus[0], nan_trace(), corpus[2]]
        reference = make_engine().evaluate_corpus(corpus, setting_a, setting_b)

        kill = tmp_path / "kill-once"
        hang = tmp_path / "hang-once"
        kill.touch()
        parent = os.getpid()
        original = CounterfactualEngine._prepare_traces_safe

        def chaos(self, *args, **kwargs):
            if os.getpid() != parent:
                if kill.exists():
                    try:
                        kill.unlink()
                        hang.touch()
                    except OSError:
                        pass
                    os._exit(1)
                if hang.exists():
                    try:
                        hang.unlink()
                    except OSError:
                        pass
                    time.sleep(60.0)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CounterfactualEngine, "_prepare_traces_safe", chaos)
        engine = make_engine(on_error="skip", shard_timeout_s=10.0)
        result = engine.evaluate_corpus(
            poisoned, setting_a, setting_b, n_workers=2
        )

        assert result.faults.skipped_trace_indices() == {1}
        kinds = {f.kind for f in result.faults.pool}
        assert "worker-death" in kinds
        survivors = [t for t in reference.per_trace if t.trace_index != 1]
        assert_same_trace_answers(result.per_trace, survivors)
