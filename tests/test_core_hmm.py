"""Tests for the HMM algorithms: Viterbi, forward-backward, sampler.

Correctness is checked against brute-force enumeration on small chains —
the gold standard for HMM code — plus structural invariants and recovery
tests on synthetic data generated from the model itself.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TransitionModel,
    forward_backward,
    sample_state_path,
    sample_state_paths,
    tridiagonal_matrix,
    viterbi_path,
)


def brute_force(log_b: np.ndarray, model: TransitionModel, deltas: np.ndarray):
    """Enumerate all state paths; return (best_path, log p(best), marginals, pairs)."""
    n, k = log_b.shape
    log_u = np.log(model.initial)
    best_path, best_score = None, -np.inf
    path_probs = {}
    for path in itertools.product(range(k), repeat=n):
        score = log_u[path[0]] + log_b[0, path[0]]
        for i in range(1, n):
            a = model.power(int(deltas[i]))[path[i - 1], path[i]]
            score += np.log(a) if a > 0 else -np.inf
            score += log_b[i, path[i]]
        path_probs[path] = score
        if score > best_score:
            best_path, best_score = path, score
    # Posterior marginals and pairwise posteriors by normalisation.
    scores = np.array(list(path_probs.values()))
    paths = list(path_probs.keys())
    weights = np.exp(scores - scores.max())
    weights /= weights.sum()
    gamma = np.zeros((n, k))
    xi = np.zeros((max(n - 1, 0), k, k))
    for path, w in zip(paths, weights):
        for i, s in enumerate(path):
            gamma[i, s] += w
        for i in range(n - 1):
            xi[i, path[i], path[i + 1]] += w
    return np.array(best_path), best_score, gamma, xi


def random_problem(rng, n_chunks=5, n_states=3, max_delta=2):
    matrix = tridiagonal_matrix(n_states, stay_prob=0.6, jump_mass=0.05)
    model = TransitionModel(matrix)
    log_b = rng.normal(0.0, 2.0, size=(n_chunks, n_states))
    deltas = np.concatenate([[0], rng.integers(0, max_delta + 1, n_chunks - 1)])
    return model, log_b, deltas


class TestViterbiAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        model, log_b, deltas = random_problem(rng)
        result = viterbi_path(log_b, model, deltas)
        expected_path, expected_score, _, _ = brute_force(log_b, model, deltas)
        assert result.log_probability == pytest.approx(expected_score, rel=1e-9)
        assert np.array_equal(result.states, expected_path)

    def test_single_chunk(self):
        model = TransitionModel(tridiagonal_matrix(4))
        log_b = np.array([[0.0, 3.0, -1.0, 0.5]])
        result = viterbi_path(log_b, model, np.array([0]))
        assert result.states[0] == 1

    def test_delta_zero_locks_states(self):
        """Chunks in the same window must share a hidden state."""
        model = TransitionModel(tridiagonal_matrix(3, jump_mass=0.0))
        # Chunk 0 prefers state 0, chunk 1 prefers state 2, but delta = 0.
        log_b = np.array([[5.0, 0.0, 4.9], [0.0, 0.0, 5.0]])
        result = viterbi_path(log_b, model, np.array([0, 0]))
        assert result.states[0] == result.states[1]

    def test_shape_validation(self):
        model = TransitionModel(tridiagonal_matrix(3))
        with pytest.raises(ValueError):
            viterbi_path(np.zeros((4, 5)), model, np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            viterbi_path(np.zeros((4, 3)), model, np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            viterbi_path(np.zeros(4), model, np.zeros(4, dtype=int))

    def test_negative_delta_rejected(self):
        model = TransitionModel(tridiagonal_matrix(3))
        with pytest.raises(ValueError):
            viterbi_path(np.zeros((2, 3)), model, np.array([0, -1]))


class TestForwardBackwardAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_marginals_match_enumeration(self, seed):
        rng = np.random.default_rng(seed + 100)
        model, log_b, deltas = random_problem(rng)
        result = forward_backward(log_b, model, deltas)
        _, _, gamma, xi = brute_force(log_b, model, deltas)
        assert np.allclose(result.gamma, gamma, atol=1e-9)
        assert np.allclose(result.xi, xi, atol=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_log_likelihood_matches_enumeration(self, seed):
        rng = np.random.default_rng(seed + 200)
        model, log_b, deltas = random_problem(rng, n_chunks=4)
        result = forward_backward(log_b, model, deltas)
        # Brute-force marginal likelihood.
        n, k = log_b.shape
        log_u = np.log(model.initial)
        total = -np.inf
        for path in itertools.product(range(k), repeat=n):
            score = log_u[path[0]] + log_b[0, path[0]]
            for i in range(1, n):
                a = model.power(int(deltas[i]))[path[i - 1], path[i]]
                score += (np.log(a) if a > 0 else -np.inf) + log_b[i, path[i]]
            total = np.logaddexp(total, score)
        assert result.log_likelihood == pytest.approx(total, rel=1e-9)

    def test_gamma_rows_sum_to_one(self):
        rng = np.random.default_rng(7)
        model, log_b, deltas = random_problem(rng, n_chunks=20, n_states=5)
        result = forward_backward(log_b, model, deltas)
        assert np.allclose(result.gamma.sum(axis=1), 1.0)

    def test_xi_slices_sum_to_one(self):
        rng = np.random.default_rng(8)
        model, log_b, deltas = random_problem(rng, n_chunks=10, n_states=4)
        result = forward_backward(log_b, model, deltas)
        assert np.allclose(result.xi.sum(axis=(1, 2)), 1.0)

    def test_xi_marginalises_to_gamma(self):
        rng = np.random.default_rng(9)
        model, log_b, deltas = random_problem(rng, n_chunks=10, n_states=4)
        result = forward_backward(log_b, model, deltas)
        assert np.allclose(result.xi.sum(axis=2), result.gamma[:-1], atol=1e-9)
        assert np.allclose(result.xi.sum(axis=1), result.gamma[1:], atol=1e-9)

    def test_single_chunk_has_empty_xi(self):
        model = TransitionModel(tridiagonal_matrix(3))
        result = forward_backward(np.zeros((1, 3)), model, np.array([0]))
        assert result.xi.shape == (0, 3, 3)
        assert np.allclose(result.gamma, 1 / 3)

    def test_extreme_emissions_no_underflow(self):
        """Rows with all tiny probabilities must not become 0/0."""
        model = TransitionModel(tridiagonal_matrix(4))
        log_b = np.full((30, 4), -1e4)
        log_b[:, 1] = -1e4 + 5.0  # state 1 relatively favoured
        result = forward_backward(log_b, model, np.concatenate([[0], np.ones(29, int)]))
        assert np.all(np.isfinite(result.gamma))
        assert np.argmax(result.gamma[15]) == 1

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_viterbi_path_consistent_with_posterior(self, seed):
        """The Viterbi path's per-step states must have nonzero posterior."""
        rng = np.random.default_rng(seed)
        model, log_b, deltas = random_problem(rng, n_chunks=8, n_states=4)
        vit = viterbi_path(log_b, model, deltas)
        fb = forward_backward(log_b, model, deltas)
        for n, s in enumerate(vit.states):
            assert fb.gamma[n, s] > 0


class TestSampler:
    def _solved(self, seed=0, n_chunks=12, n_states=4):
        rng = np.random.default_rng(seed)
        model, log_b, deltas = random_problem(rng, n_chunks=n_chunks, n_states=n_states)
        vit = viterbi_path(log_b, model, deltas)
        fb = forward_backward(log_b, model, deltas)
        return vit, fb

    def test_anchored_last_state(self):
        vit, fb = self._solved()
        path = sample_state_path(vit.states, fb.xi, seed=1)
        assert path[-1] == vit.states[-1]
        assert path.shape == vit.states.shape

    def test_seeded_determinism(self):
        vit, fb = self._solved()
        a = sample_state_path(vit.states, fb.xi, seed=5)
        b = sample_state_path(vit.states, fb.xi, seed=5)
        assert np.array_equal(a, b)

    def test_samples_respect_pairwise_support(self):
        vit, fb = self._solved(seed=3)
        for s in sample_state_paths(vit.states, fb.xi, count=20, seed=2):
            for n in range(len(s) - 1):
                assert fb.xi[n, s[n], s[n + 1]] > 0

    def test_unanchored_requires_gamma(self):
        vit, fb = self._solved()
        with pytest.raises(ValueError):
            sample_state_path(vit.states, fb.xi, seed=0, anchor_last=False)

    def test_unanchored_draws_from_marginal(self):
        vit, fb = self._solved(seed=4)
        paths = sample_state_paths(
            vit.states, fb.xi, count=200, seed=0, anchor_last=False, gamma=fb.gamma
        )
        last = np.array([p[-1] for p in paths])
        freq = np.bincount(last, minlength=fb.gamma.shape[1]) / len(paths)
        assert np.allclose(freq, fb.gamma[-1], atol=0.12)

    def test_sample_distribution_matches_posterior(self):
        """Empirical marginals of many samples approximate gamma."""
        vit, fb = self._solved(seed=6, n_chunks=6, n_states=3)
        paths = sample_state_paths(
            vit.states, fb.xi, count=600, seed=1, anchor_last=False, gamma=fb.gamma
        )
        stacked = np.stack(paths)
        for n in range(stacked.shape[1]):
            freq = np.bincount(stacked[:, n], minlength=3) / len(paths)
            assert np.allclose(freq, fb.gamma[n], atol=0.1)

    def test_count_validation(self):
        vit, fb = self._solved()
        with pytest.raises(ValueError):
            sample_state_paths(vit.states, fb.xi, count=0)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            sample_state_path(np.array([], dtype=int), np.zeros((0, 3, 3)))

    def test_mismatched_xi_rejected(self):
        with pytest.raises(ValueError):
            sample_state_path(np.array([0, 1]), np.zeros((5, 3, 3)))
