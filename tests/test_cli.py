"""Tests for the command-line interface and log file round-trips."""

from __future__ import annotations

import json

import pytest

from repro import MPCAlgorithm, SessionConfig, SessionLog, StreamingSession, constant_trace
from repro.cli import build_parser, main
from repro.video import short_video


class TestLogFileIO:
    def test_save_load_round_trip(self, tmp_path):
        video = short_video(duration_s=60.0, seed=1)
        log = StreamingSession(
            video, MPCAlgorithm(), constant_trace(5.0, 600.0), SessionConfig()
        ).run()
        path = tmp_path / "session.json"
        log.save(path)
        restored = SessionLog.load(path)
        assert restored.n_chunks == log.n_chunks
        assert restored.records[3] == log.records[3]
        assert restored.abr_name == log.abr_name

    def test_saved_file_is_json(self, tmp_path):
        video = short_video(duration_s=60.0, seed=1)
        log = StreamingSession(
            video, MPCAlgorithm(), constant_trace(5.0, 600.0), SessionConfig()
        ).run()
        path = tmp_path / "session.json"
        log.save(path)
        data = json.loads(path.read_text())
        assert "records" in data
        assert len(data["records"]) == log.n_chunks


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--traces", "2", "--out", "/tmp/x"]
        )
        assert args.command == "simulate"
        assert args.traces == 2

    def test_counterfactual_query_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["counterfactual", "--query", "nope"])


class TestEndToEnd:
    def test_simulate_then_abduct(self, tmp_path, capsys):
        out = tmp_path / "logs"
        rc = main([
            "simulate", "--traces", "1", "--duration-s", "200",
            "--out", str(out),
        ])
        assert rc == 0
        files = sorted(out.glob("session_*.json"))
        assert len(files) == 1

        trace_out = tmp_path / "traces.json"
        rc = main([
            "abduct", str(files[0]), "--samples", "2", "--out", str(trace_out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "log-likelihood" in captured
        payload = json.loads(trace_out.read_text())
        assert len(payload["samples"]) == 2
        assert "map" in payload

    def test_counterfactual_command(self, capsys):
        rc = main([
            "counterfactual", "--query", "bba", "--traces", "2",
            "--duration-s", "300", "--samples", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Counterfactual:" in out
        assert "mean_ssim" in out
