"""Parity tests: vectorised inference paths vs their scalar references.

The vectorised engine (batched Algorithm-4 grids, batch emission matrix,
einsum pairwise posteriors, inverse-CDF FFBS) must agree with the scalar
reference implementations to <= 1e-9 across randomized sessions, including
the awkward cases: Δ = 0 gaps, single-chunk sessions, and zero-capacity
grid points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CapacityGrid,
    EmissionModel,
    TransitionModel,
    forward_backward,
    naive_emission,
    sample_state_path,
    sample_state_paths,
    tridiagonal_matrix,
    viterbi_path,
)
from repro.core.forward_backward import forward_backward_reference
from repro.core.sampler import sample_state_paths_reference
from repro.tcp import (
    TCPStateSnapshot,
    estimate_throughput,
    estimate_throughput_grid,
    estimate_throughput_grid_batch,
    estimate_throughput_grid_reference,
)

TOL = 1e-9


def random_tcp_state(rng) -> TCPStateSnapshot:
    return TCPStateSnapshot(
        cwnd_segments=int(rng.integers(1, 500)),
        ssthresh_segments=int(rng.integers(1, 500)),
        srtt_s=float(rng.uniform(0.01, 0.3)),
        min_rtt_s=float(rng.uniform(0.01, 0.3)),
        rto_s=float(rng.uniform(0.2, 1.0)),
        time_since_last_send_s=float(rng.uniform(0.0, 10.0)),
    )


def random_session(rng, n_chunks):
    states = [random_tcp_state(rng) for _ in range(n_chunks)]
    sizes = [float(rng.uniform(2_000, 4_000_000)) for _ in range(n_chunks)]
    observed = [float(rng.uniform(0.0, 12.0)) for _ in range(n_chunks)]
    return states, sizes, observed


class TestEstimatorParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_grid_matches_reference_and_scalar(self, seed):
        rng = np.random.default_rng(seed)
        state = random_tcp_state(rng)
        size = float(rng.uniform(2_000, 4_000_000))
        # Zero-capacity grid point included on purpose.
        grid = np.concatenate([[0.0], np.sort(rng.uniform(0.01, 50.0, 40))])
        fast = estimate_throughput_grid(grid, state, size)
        reference = estimate_throughput_grid_reference(grid, state, size)
        scalar = np.array([estimate_throughput(c, state, size) for c in grid])
        assert np.allclose(fast, reference, atol=TOL, rtol=0)
        assert np.allclose(fast, scalar, atol=TOL, rtol=0)
        assert fast[0] == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_batch_matches_per_chunk(self, seed):
        rng = np.random.default_rng(100 + seed)
        states, sizes, _ = random_session(rng, n_chunks=30)
        grid = np.concatenate([[0.0], np.sort(rng.uniform(0.01, 20.0, 25))])
        batch = estimate_throughput_grid_batch(grid, states, np.asarray(sizes))
        rows = np.vstack(
            [estimate_throughput_grid(grid, w, s) for w, s in zip(states, sizes)]
        )
        assert np.allclose(batch, rows, atol=TOL, rtol=0)

    def test_batch_single_chunk(self):
        rng = np.random.default_rng(7)
        states, sizes, _ = random_session(rng, n_chunks=1)
        grid = np.array([0.0, 0.5, 5.0, 10.0])
        batch = estimate_throughput_grid_batch(grid, states, np.asarray(sizes))
        assert batch.shape == (1, 4)
        assert np.allclose(
            batch[0], estimate_throughput_grid(grid, states[0], sizes[0]),
            atol=TOL, rtol=0,
        )


class TestEmissionParity:
    @pytest.mark.parametrize("outlier_mass", [0.0, 0.05])
    @pytest.mark.parametrize("seed", range(4))
    def test_matrix_matches_row_stack(self, outlier_mass, seed):
        rng = np.random.default_rng(200 + seed)
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid, outlier_mass=outlier_mass)
        states, sizes, observed = random_session(rng, n_chunks=40)
        # Repeated (state, size) pairs exercise the memoised path too.
        states[7], sizes[7] = states[2], sizes[2]
        matrix = model.log_prob_matrix(observed, states, sizes)
        rows = np.vstack(
            [
                model.log_prob_row(y, w, s)
                for y, w, s in zip(observed, states, sizes)
            ]
        )
        assert np.allclose(matrix, rows, atol=TOL, rtol=0)

    def test_memoised_path_matches_batch_path(self):
        rng = np.random.default_rng(300)
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid)
        states, sizes, observed = random_session(rng, n_chunks=20)
        memo: dict = {}
        with_memo = model.log_prob_matrix(observed, states, sizes, memo=memo)
        without = model.log_prob_matrix(observed, states, sizes)
        assert np.allclose(with_memo, without, atol=TOL, rtol=0)
        assert len(memo) == 20  # all pairs distinct -> all cached

    def test_single_chunk_session(self):
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid)
        rng = np.random.default_rng(8)
        states, sizes, observed = random_session(rng, n_chunks=1)
        matrix = model.log_prob_matrix(observed, states, sizes)
        assert matrix.shape == (1, grid.n_states)
        assert np.allclose(
            matrix[0],
            model.log_prob_row(observed[0], states[0], sizes[0]),
            atol=TOL,
            rtol=0,
        )

    def test_naive_emission_batch(self):
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid, estimator=naive_emission)
        rng = np.random.default_rng(9)
        states, sizes, observed = random_session(rng, n_chunks=5)
        matrix = model.log_prob_matrix(observed, states, sizes)
        rows = np.vstack(
            [
                model.log_prob_row(y, w, s)
                for y, w, s in zip(observed, states, sizes)
            ]
        )
        assert np.allclose(matrix, rows, atol=TOL, rtol=0)

    def test_rejects_negative_observation(self):
        grid = CapacityGrid(0.5, 10.0)
        model = EmissionModel(grid)
        rng = np.random.default_rng(10)
        states, sizes, observed = random_session(rng, n_chunks=3)
        observed[1] = -0.5
        with pytest.raises(ValueError):
            model.log_prob_matrix(observed, states, sizes)


def random_problem(rng, n_chunks, n_states=5, max_delta=3):
    model = TransitionModel(
        tridiagonal_matrix(n_states, stay_prob=0.6, jump_mass=0.05)
    )
    log_b = rng.normal(0.0, 3.0, size=(n_chunks, n_states))
    # Δ = 0 gaps occur whenever max_delta sampling hits zero.
    deltas = np.concatenate([[0], rng.integers(0, max_delta + 1, n_chunks - 1)])
    return model, log_b, deltas


class TestForwardBackwardParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(400 + seed)
        model, log_b, deltas = random_problem(rng, n_chunks=int(rng.integers(2, 50)))
        fast = forward_backward(log_b, model, deltas)
        reference = forward_backward_reference(log_b, model, deltas)
        assert np.allclose(fast.gamma, reference.gamma, atol=TOL, rtol=0)
        assert np.allclose(fast.xi, reference.xi, atol=TOL, rtol=0)
        assert fast.log_likelihood == pytest.approx(
            reference.log_likelihood, abs=TOL
        )

    def test_single_chunk(self):
        rng = np.random.default_rng(11)
        model, log_b, deltas = random_problem(rng, n_chunks=1)
        fast = forward_backward(log_b, model, deltas)
        reference = forward_backward_reference(log_b, model, deltas)
        assert fast.xi.shape == reference.xi.shape == (0, 5, 5)
        assert np.allclose(fast.gamma, reference.gamma, atol=TOL, rtol=0)

    def test_all_zero_gaps(self):
        """Chunks crammed into one δ-window (every Δ = 0)."""
        rng = np.random.default_rng(12)
        model = TransitionModel(tridiagonal_matrix(4, jump_mass=0.01))
        log_b = rng.normal(0.0, 2.0, size=(8, 4))
        deltas = np.zeros(8, dtype=int)
        fast = forward_backward(log_b, model, deltas)
        reference = forward_backward_reference(log_b, model, deltas)
        assert np.allclose(fast.gamma, reference.gamma, atol=TOL, rtol=0)
        assert np.allclose(fast.xi, reference.xi, atol=TOL, rtol=0)


class TestSamplerParity:
    def _solved(self, seed=0, n_chunks=12, n_states=4):
        rng = np.random.default_rng(seed)
        model, log_b, deltas = random_problem(rng, n_chunks, n_states)
        vit = viterbi_path(log_b, model, deltas)
        fb = forward_backward(log_b, model, deltas)
        return vit, fb

    def test_batched_respects_anchor_and_support(self):
        vit, fb = self._solved(seed=1)
        for path in sample_state_paths(vit.states, fb.xi, count=50, seed=3):
            assert path[-1] == vit.states[-1]
            for n in range(len(path) - 1):
                assert fb.xi[n, path[n], path[n + 1]] > 0

    def test_batched_determinism(self):
        vit, fb = self._solved(seed=2)
        a = sample_state_paths(vit.states, fb.xi, count=8, seed=9)
        b = sample_state_paths(vit.states, fb.xi, count=8, seed=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_batched_matches_reference_distribution(self):
        """Pairwise transition frequencies agree with the scalar sampler."""
        vit, fb = self._solved(seed=3, n_chunks=6, n_states=3)
        n_samples = 4000
        batched = np.stack(
            sample_state_paths(vit.states, fb.xi, count=n_samples, seed=0)
        )
        scalar = np.stack(
            sample_state_paths_reference(
                vit.states, fb.xi, count=n_samples, seed=0
            )
        )
        for n in range(batched.shape[1]):
            freq_batched = np.bincount(batched[:, n], minlength=3) / n_samples
            freq_scalar = np.bincount(scalar[:, n], minlength=3) / n_samples
            assert np.allclose(freq_batched, freq_scalar, atol=0.05)

    def test_degenerate_column_falls_back_to_viterbi(self):
        """A zero column in xi must select the Viterbi state, as the scalar
        sampler does."""
        vit, fb = self._solved(seed=4, n_chunks=3, n_states=3)
        xi = fb.xi.copy()
        xi[0, :, :] = 0.0  # every predecessor column degenerate
        batched = sample_state_paths(vit.states, xi, count=10, seed=5)
        for path in batched:
            assert path[0] == vit.states[0]
        scalar = sample_state_path(vit.states, xi, seed=5)
        assert scalar[0] == vit.states[0]

    def test_single_chunk_paths(self):
        vit, fb = self._solved(seed=5, n_chunks=1)
        paths = sample_state_paths(vit.states, fb.xi, count=4, seed=0)
        assert len(paths) == 4
        assert all(p.shape == (1,) and p[0] == vit.states[-1] for p in paths)

    def test_unanchored_matches_gamma(self):
        vit, fb = self._solved(seed=6, n_chunks=5, n_states=3)
        paths = sample_state_paths(
            vit.states, fb.xi, count=3000, seed=1, anchor_last=False,
            gamma=fb.gamma,
        )
        last = np.array([p[-1] for p in paths])
        freq = np.bincount(last, minlength=3) / len(paths)
        assert np.allclose(freq, fb.gamma[-1], atol=0.05)

    def test_count_validation(self):
        vit, fb = self._solved()
        with pytest.raises(ValueError):
            sample_state_paths(vit.states, fb.xi, count=0)

    def test_unanchored_requires_gamma(self):
        vit, fb = self._solved()
        with pytest.raises(ValueError):
            sample_state_paths(vit.states, fb.xi, count=2, anchor_last=False)
