"""Tests for the video substrate: ladders, SSIM model, VBR chunks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.video import (
    QualityLadder,
    Video,
    default_ladder,
    higher_ladder,
    paper_video,
    short_video,
    ssim_from_bitrate,
    ssim_from_db,
    ssim_to_db,
)


class TestSSIMModel:
    def test_anchors_match_paper(self):
        assert ssim_from_bitrate(0.1) == pytest.approx(0.908, abs=1e-6)
        assert ssim_from_bitrate(4.0) == pytest.approx(0.986, abs=1e-6)

    def test_monotone_in_bitrate(self):
        rates = [0.1, 0.3, 1.0, 4.0, 8.0, 16.0]
        vals = [ssim_from_bitrate(r) for r in rates]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_saturates_below_one(self):
        assert ssim_from_bitrate(100.0) < 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ssim_from_bitrate(0.0)

    def test_db_round_trip(self):
        for s in [0.5, 0.9, 0.99]:
            assert ssim_from_db(ssim_to_db(s)) == pytest.approx(s)

    def test_db_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ssim_to_db(1.0)

    @given(st.floats(min_value=0.01, max_value=50.0))
    def test_ssim_in_unit_interval(self, rate):
        assert 0.0 < ssim_from_bitrate(rate) < 1.0


class TestQualityLadder:
    def test_default_ladder_span(self):
        ladder = default_ladder()
        assert ladder.lowest.bitrate_mbps == 0.1
        assert ladder.highest.bitrate_mbps == 4.0
        assert len(ladder) == 7

    def test_higher_ladder_is_higher(self):
        assert higher_ladder().highest.bitrate_mbps > default_ladder().highest.bitrate_mbps

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            QualityLadder([1.0, 0.5])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            QualityLadder([1.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QualityLadder([])

    def test_rejects_bad_names(self):
        with pytest.raises(ValueError):
            QualityLadder([1.0, 2.0], names=["only-one"])

    def test_indexing_and_iteration(self):
        ladder = default_ladder()
        assert ladder[0].index == 0
        assert [lv.index for lv in ladder] == list(range(7))

    def test_nearest_level(self):
        ladder = default_ladder()
        assert ladder.nearest_level(1.1).bitrate_mbps == 1.2
        assert ladder.nearest_level(100.0).bitrate_mbps == 4.0

    def test_highest_below(self):
        ladder = default_ladder()
        assert ladder.highest_below(1.0).bitrate_mbps == 0.75
        assert ladder.highest_below(0.01).bitrate_mbps == 0.1
        assert ladder.highest_below(99).bitrate_mbps == 4.0


class TestVideo:
    def test_paper_video_shape(self):
        video = paper_video(seed=1)
        assert video.n_qualities == 7
        assert video.n_chunks == pytest.approx(600 / 2.002, abs=1)
        assert video.duration_s == pytest.approx(600, abs=3)

    def test_mean_ssim_matches_anchors(self):
        video = paper_video(seed=1)
        means = video.mean_ssim_per_quality()
        assert means[0] == pytest.approx(0.908, abs=0.01)
        assert means[-1] == pytest.approx(0.986, abs=0.004)

    def test_sizes_scale_with_bitrate(self):
        video = short_video(seed=2)
        mean_sizes = [
            np.mean([video.chunk_size_bytes(n, q) for n in range(video.n_chunks)])
            for q in range(video.n_qualities)
        ]
        assert all(a < b for a, b in zip(mean_sizes, mean_sizes[1:]))

    def test_nominal_size_roughly_bitrate_times_duration(self):
        video = short_video(seed=2)
        q = video.n_qualities - 1
        nominal = video.bitrate_mbps(q) * 1e6 / 8 * video.chunk_duration_s
        mean = np.mean([video.chunk_size_bytes(n, q) for n in range(video.n_chunks)])
        assert mean == pytest.approx(nominal, rel=0.25)

    def test_generate_deterministic(self):
        a = short_video(seed=5)
        b = short_video(seed=5)
        assert a.chunk_size_bytes(3, 2) == b.chunk_size_bytes(3, 2)

    def test_sizes_for_chunk_is_read_only(self):
        video = short_video(seed=2)
        row = video.sizes_for_chunk(0)
        with pytest.raises(ValueError):
            row[0] = -1
        assert video.chunk_size_bytes(0, 0) > 0

    def test_matrices_are_read_only_views(self):
        video = short_video(seed=2)
        assert video.size_matrix.shape == video.ssim_matrix.shape
        for mat in (video.size_matrix, video.ssim_matrix, video.ssim_db_matrix):
            with pytest.raises(ValueError):
                mat[0, 0] = -1

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            Video.generate(default_ladder(), duration_s=0.0)

    def test_validation_rejects_bad_ssim(self):
        with pytest.raises(ValueError):
            Video(
                default_ladder(),
                2.0,
                np.ones((5, 7)),
                np.full((5, 7), 1.5),
            )

    def test_validation_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Video(default_ladder(), 2.0, np.ones((5, 6)), np.full((5, 6), 0.9))


class TestReencoding:
    def test_reencode_changes_ladder(self):
        video = short_video(seed=3)
        re = video.reencoded(higher_ladder(), seed=0)
        assert re.ladder.highest.bitrate_mbps == 8.0
        assert re.n_chunks == video.n_chunks
        assert re.chunk_duration_s == video.chunk_duration_s

    def test_reencode_preserves_difficulty_ordering(self):
        """Hard scenes remain relatively large in the new encode."""
        video = short_video(seed=3)
        re = video.reencoded(higher_ladder(), seed=0)
        q_old = video.n_qualities - 1
        q_new = re.n_qualities - 1
        old_sizes = np.array(
            [video.chunk_size_bytes(n, q_old) for n in range(video.n_chunks)]
        )
        new_sizes = np.array(
            [re.chunk_size_bytes(n, q_new) for n in range(re.n_chunks)]
        )
        corr = np.corrcoef(old_sizes, new_sizes)[0, 1]
        assert corr > 0.5

    def test_reencode_raises_mean_quality(self):
        video = short_video(seed=3)
        re = video.reencoded(higher_ladder(), seed=0)
        assert re.mean_ssim_per_quality()[0] > video.mean_ssim_per_quality()[0]
