"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim keeps the
legacy install routes working — ``pip install -e . --no-build-isolation
--no-use-pep517`` (where pip's wheel prerequisite is met) and plain
``python setup.py develop`` (fully offline) — with all metadata read from
pyproject.toml's ``[project]`` table by setuptools >= 61.  pyproject.toml
intentionally omits a ``[build-system]`` backend declaration: pip rejects
``--no-use-pep517`` for projects that pin one.
"""

from setuptools import setup

setup()
