"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'`` and pip refuses
``--no-use-pep517`` outright ("not possible ... without setuptools and
wheel installed").  This shim keeps ``python setup.py develop`` working
fully offline — the only editable route there — with all metadata read
from pyproject.toml's ``[project]`` table by setuptools >= 61.
pyproject.toml intentionally omits a ``[build-system]`` backend
declaration (see the comment there for the probe results); where
``wheel`` is available, plain ``pip install -e .`` works without this
shim being exercised.
"""

from setuptools import setup

setup()
